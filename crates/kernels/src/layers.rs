//! Auxiliary layers needed by the complete networks of Fig 14/15:
//! fully-connected (GEMM-backed), ReLU, and local response normalization
//! (AlexNet/ZFNet use LRN between their early conv/pool stages).

use crate::gemm_model::{GemmConfig, GemmKernel};
use memcnn_gpusim::{
    AddressSpace, BankMode, BlockTrace, DeviceBuffer, KernelSpec, LaunchConfig, WorkSummary,
};
use memcnn_tensor::Tensor;
use rayon::prelude::*;

/// Functional fully-connected layer: flattens each image of `input` (any
/// layout) to a vector and multiplies by `weights[outputs][inputs]`.
pub fn fc_forward(input: &Tensor, weights: &[f32], outputs: usize) -> Vec<f32> {
    let shape = input.shape();
    let per_image = shape.c * shape.h * shape.w;
    assert_eq!(weights.len(), outputs * per_image, "weight matrix must be outputs x inputs");
    // Flatten in canonical (c, h, w) order regardless of layout.
    let mut flat = vec![0f32; shape.n * per_image];
    for ((n, c, h, w), v) in input.iter_logical() {
        flat[n * per_image + (c * shape.h + h) * shape.w + w] = v;
    }
    // out[n][o] = sum_i flat[n][i] * weights[o][i]  == flat x weights^T.
    let mut out = vec![0f32; shape.n * outputs];
    out.par_chunks_mut(outputs).enumerate().for_each(|(n, row)| {
        let x = &flat[n * per_image..(n + 1) * per_image];
        for (o, slot) in row.iter_mut().enumerate() {
            let wrow = &weights[o * per_image..(o + 1) * per_image];
            *slot = x.iter().zip(wrow).map(|(a, b)| a * b).sum();
        }
    });
    out
}

/// GPU kernel spec of a fully-connected layer: a GEMM of
/// `[outputs x inputs] x [inputs x batch]`.
pub fn fc_kernel(batch: usize, inputs: usize, outputs: usize) -> GemmKernel {
    GemmKernel::with_fresh_buffers(outputs, inputs, batch, GemmConfig::default())
}

/// Backward of the fully-connected layer: given `grad_out[n][o]`, the
/// flattened input and `weights[o][i]`, returns
/// `(grad_weights[o][i], grad_input[n][i])`.
pub fn fc_backward(
    input: &Tensor,
    weights: &[f32],
    grad_out: &[f32],
    outputs: usize,
) -> (Vec<f32>, Vec<f32>) {
    let shape = input.shape();
    let per_image = shape.c * shape.h * shape.w;
    assert_eq!(weights.len(), outputs * per_image);
    assert_eq!(grad_out.len(), shape.n * outputs);
    let mut flat = vec![0f32; shape.n * per_image];
    for ((n, c, h, w), v) in input.iter_logical() {
        flat[n * per_image + (c * shape.h + h) * shape.w + w] = v;
    }
    // dW[o][i] = sum_n dY[n][o] * X[n][i]
    let mut grad_w = vec![0f32; outputs * per_image];
    grad_w.par_chunks_mut(per_image).enumerate().for_each(|(o, row)| {
        for n in 0..shape.n {
            let g = grad_out[n * outputs + o];
            if g != 0.0 {
                for (r, &x) in row.iter_mut().zip(&flat[n * per_image..(n + 1) * per_image]) {
                    *r += g * x;
                }
            }
        }
    });
    // dX[n][i] = sum_o dY[n][o] * W[o][i]
    let mut grad_x = vec![0f32; shape.n * per_image];
    grad_x.par_chunks_mut(per_image).enumerate().for_each(|(n, row)| {
        for o in 0..outputs {
            let g = grad_out[n * outputs + o];
            if g != 0.0 {
                let wrow = &weights[o * per_image..(o + 1) * per_image];
                for (r, &w) in row.iter_mut().zip(wrow) {
                    *r += g * w;
                }
            }
        }
    });
    (grad_w, grad_x)
}

/// Backward of ReLU: pass gradients where the forward input was positive.
pub fn relu_backward(input: &Tensor, grad_out: &Tensor) -> Tensor {
    assert_eq!(input.shape(), grad_out.shape());
    let mut grad_in = grad_out.to_layout(input.layout());
    for ((n, c, h, w), v) in input.iter_logical() {
        if v <= 0.0 {
            grad_in.set(n, c, h, w, 0.0);
        }
    }
    grad_in
}

/// Functional ReLU (any layout; element-wise so the layout is irrelevant).
pub fn relu_forward(input: &Tensor) -> Tensor {
    let mut out = input.clone();
    out.as_mut_slice().par_iter_mut().for_each(|v| {
        if *v < 0.0 {
            *v = 0.0;
        }
    });
    out
}

/// GPU kernel spec of an element-wise streaming op (ReLU, bias add, scale):
/// perfectly coalesced read-modify-write of `elems` values.
#[derive(Clone, Debug)]
pub struct ElementwiseKernel {
    name: String,
    elems: u64,
    flops_per_elem: u64,
    input: DeviceBuffer,
    output: DeviceBuffer,
}

impl ElementwiseKernel {
    /// Build a streaming element-wise kernel over `elems` f32 values.
    pub fn new(name: impl Into<String>, elems: u64, flops_per_elem: u64) -> ElementwiseKernel {
        let mut asp = AddressSpace::new();
        let input = asp.alloc_f32(elems);
        let output = asp.alloc_f32(elems);
        ElementwiseKernel { name: name.into(), elems, flops_per_elem, input, output }
    }
}

impl KernelSpec for ElementwiseKernel {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: self.elems.div_ceil(1024).max(1),
            threads_per_block: 256,
            regs_per_thread: 12,
            smem_per_block: 0,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let bytes = 4.0 * self.elems as f64;
        WorkSummary::new(bytes, bytes, 2 * self.elems * 4).with_ilp(4.0)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        // Each block processes 1024 elements: 256 threads x 4 grid-stride.
        let mut addrs = Vec::with_capacity(32);
        for i in 0..32u64 {
            let base = block * 1024 + i * 32;
            if base >= self.elems {
                break;
            }
            let lanes = 32.min(self.elems - base) as usize;
            addrs.clear();
            for lane in 0..lanes as u64 {
                addrs.push(self.input.f32(base + lane));
            }
            t.global_load(&addrs, 4);
            addrs.clear();
            for lane in 0..lanes as u64 {
                addrs.push(self.output.f32(base + lane));
            }
            t.global_store(&addrs, 4);
            t.flops(self.flops_per_elem * lanes as u64);
        }
        t.aux(8);
    }
}

/// Functional local response normalization across channels (AlexNet §3.3
/// form): `out = in / (k + alpha/size * sum_{window} in^2)^beta`.
pub fn lrn_forward(input: &Tensor, size: usize, alpha: f32, beta: f32, k: f32) -> Tensor {
    let shape = input.shape();
    let half = size / 2;
    let mut out = Tensor::zeros(shape, input.layout());
    for n in 0..shape.n {
        for h in 0..shape.h {
            for w in 0..shape.w {
                for c in 0..shape.c {
                    let lo = c.saturating_sub(half);
                    let hi = (c + half).min(shape.c - 1);
                    let mut sum = 0f32;
                    for cc in lo..=hi {
                        let v = input.get(n, cc, h, w);
                        sum += v * v;
                    }
                    let denom = (k + alpha / size as f32 * sum).powf(beta);
                    out.set(n, c, h, w, input.get(n, c, h, w) / denom);
                }
            }
        }
    }
    out
}

/// GPU kernel spec of LRN: streaming with a `size`-wide channel window;
/// reads are coalesced in both layouts (the window walks `C`, which is
/// never the innermost dimension for NCHW or CHWN) and the re-reads hit L2.
#[derive(Clone, Debug)]
pub struct LrnKernel {
    elems: u64,
    size: u64,
    input: DeviceBuffer,
    output: DeviceBuffer,
}

impl LrnKernel {
    /// Build over `elems` values with a `size`-channel window.
    pub fn new(elems: u64, size: u64) -> LrnKernel {
        let mut asp = AddressSpace::new();
        let input = asp.alloc_f32(elems);
        let output = asp.alloc_f32(elems);
        LrnKernel { elems, size, input, output }
    }
}

impl KernelSpec for LrnKernel {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        format!("lrn size={}", self.size)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: self.elems.div_ceil(1024).max(1),
            threads_per_block: 256,
            regs_per_thread: 24,
            smem_per_block: 0,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let bytes = 4.0 * self.elems as f64;
        // Window re-reads mostly hit L2: compulsory traffic is ~2 passes.
        WorkSummary::new(bytes, bytes, 2 * self.elems * 4).with_ilp(2.0)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let mut addrs = Vec::with_capacity(32);
        for i in 0..8u64 {
            let base = block * 1024 + i * 32;
            if base >= self.elems {
                break;
            }
            let lanes = 32.min(self.elems - base) as usize;
            // The window: `size` coalesced loads at channel offsets (the
            // channel stride is large; neighbours stay L2-resident).
            for wdx in 0..self.size {
                addrs.clear();
                for lane in 0..lanes as u64 {
                    let e = (base + lane + wdx * 4096).min(self.elems - 1);
                    addrs.push(self.input.f32(e));
                }
                t.global_load(&addrs, 4);
            }
            addrs.clear();
            for lane in 0..lanes as u64 {
                addrs.push(self.output.f32(base + lane));
            }
            t.global_store(&addrs, 4);
            t.flops((3 * self.size + 10) * lanes as u64);
            t.aux(self.size + 4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};
    use memcnn_tensor::{Layout, Shape};

    #[test]
    fn fc_forward_computes_dot_products() {
        let input =
            Tensor::from_fn(Shape::new(2, 1, 1, 3), Layout::NCHW, |n, _, _, w| (n * 3 + w) as f32);
        // weights: 2 outputs x 3 inputs.
        let weights = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let out = fc_forward(&input, &weights, 2);
        assert_eq!(out, vec![0.0, 3.0, 3.0, 12.0]);
    }

    #[test]
    fn fc_forward_is_layout_invariant() {
        let shape = Shape::new(3, 4, 5, 5);
        let base = Tensor::random(shape, Layout::NCHW, 31);
        let weights: Vec<f32> = (0..10 * 100).map(|i| ((i % 7) as f32 - 3.0) * 0.1).collect();
        let want = fc_forward(&base, &weights, 10);
        let got = fc_forward(&base.to_layout(Layout::CHWN), &weights, 10);
        for (a, b) in want.iter().zip(&got) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn fc_backward_matches_finite_difference() {
        let shape = Shape::new(2, 1, 1, 3);
        let input = Tensor::random(shape, Layout::NCHW, 50);
        let weights: Vec<f32> = (0..2 * 3).map(|i| (i as f32 - 2.5) * 0.3).collect();
        // Loss = sum of outputs -> grad_out all ones.
        let grad_out = vec![1.0f32; 2 * 2];
        let (gw, gx) = fc_backward(&input, &weights, &grad_out, 2);
        let loss = |w: &[f32], x: &Tensor| -> f32 { fc_forward(x, w, 2).iter().sum() };
        let eps = 1e-2;
        // Weight gradient check.
        let mut wb = weights.clone();
        wb[4] += eps;
        let fd = (loss(&wb, &input) - loss(&weights, &input)) / eps;
        assert!((fd - gw[4]).abs() < 0.02 * (1.0 + gw[4].abs()), "{fd} vs {}", gw[4]);
        // Input gradient check.
        let mut xb = input.clone();
        xb.set(1, 0, 0, 2, input.get(1, 0, 0, 2) + eps);
        let fd = (loss(&weights, &xb) - loss(&weights, &input)) / eps;
        let gi = gx[3 + 2]; // row 1 (width 3), column 2
        assert!((fd - gi).abs() < 0.02 * (1.0 + gi.abs()), "{fd} vs {gi}");
    }

    #[test]
    fn relu_backward_masks_gradients() {
        let input = Tensor::from_fn(Shape::new(1, 1, 2, 2), Layout::NCHW, |_, _, h, w| {
            if (h + w) % 2 == 0 {
                1.0
            } else {
                -1.0
            }
        });
        let g = Tensor::full(input.shape(), Layout::NCHW, 5.0);
        let gi = relu_backward(&input, &g);
        assert_eq!(gi.get(0, 0, 0, 0), 5.0);
        assert_eq!(gi.get(0, 0, 0, 1), 0.0);
        assert_eq!(gi.get(0, 0, 1, 1), 5.0);
    }

    #[test]
    fn relu_zeroes_negatives_only() {
        let t = Tensor::from_fn(Shape::new(1, 1, 2, 2), Layout::NCHW, |_, _, h, w| {
            (h as f32 - 0.5) * (w as f32 * 2.0 - 1.0)
        });
        let r = relu_forward(&t);
        for (_, v) in r.iter_logical() {
            assert!(v >= 0.0);
        }
        let positives_in = t.iter_logical().filter(|&(_, v)| v > 0.0).count();
        let positives_out = r.iter_logical().filter(|&(_, v)| v > 0.0).count();
        assert_eq!(positives_in, positives_out);
    }

    #[test]
    fn lrn_normalizes_towards_unity() {
        let t = Tensor::full(Shape::new(1, 8, 2, 2), Layout::NCHW, 2.0);
        let out = lrn_forward(&t, 5, 1e-4, 0.75, 2.0);
        for (_, v) in out.iter_logical() {
            assert!(v > 0.0 && v < 2.0);
        }
    }

    #[test]
    fn lrn_identity_when_alpha_zero_k_one() {
        let t = Tensor::random(Shape::new(2, 6, 3, 3), Layout::NCHW, 5);
        let out = lrn_forward(&t, 5, 0.0, 0.75, 1.0);
        assert!(out.approx_eq(&t, 1e-6));
    }

    #[test]
    fn elementwise_kernel_is_bandwidth_bound() {
        let d = DeviceConfig::titan_black();
        let k = ElementwiseKernel::new("relu", 64 << 20, 1);
        let r = simulate(&d, &k, &SimOptions::default()).unwrap();
        assert!(r.dram_gbs() > 0.7 * d.dram_bw / 1e9, "{} GB/s", r.dram_gbs());
    }

    #[test]
    fn lrn_kernel_l2_absorbs_window_rereads() {
        let d = DeviceConfig::titan_black();
        let k = LrnKernel::new(32 << 20, 5);
        let r = simulate(&d, &k, &SimOptions::default()).unwrap();
        // 5x window reads but DRAM traffic stays near 2 passes.
        let passes = r.dram_bytes / (4.0 * (32 << 20) as f64);
        assert!(passes < 3.5, "DRAM passes {passes}");
    }
}
