//! GPU access-pattern model of a shared-memory-tiled SGEMM.
//!
//! This is the behavioural stand-in for cuBLAS (§II.B: Caffe/cuDNN
//! "utilize the cuBLAS library for matrix operations"). The kernel is the
//! classic tiled GEMM: each block computes a `TM x TN` tile of `C`,
//! marching over `K` in `TK`-wide steps; each step stages an `A` and a `B`
//! tile through shared memory, and each thread accumulates an
//! `RT x RT` register tile.

use memcnn_gpusim::{
    AddressSpace, BankMode, BlockTrace, DeviceBuffer, KernelSpec, LaunchConfig, WorkSummary,
};

/// Tiling parameters of the modelled GEMM kernel.
#[derive(Clone, Copy, Debug)]
pub struct GemmConfig {
    /// C-tile rows per block.
    pub tm: usize,
    /// C-tile cols per block.
    pub tn: usize,
    /// K-step per shared-memory stage.
    pub tk: usize,
    /// Register tile edge per thread (RT x RT accumulators).
    pub rt: usize,
}

impl Default for GemmConfig {
    fn default() -> Self {
        // 64x64 C tiles, 16-wide K steps, 4x4 register tiles: 256 threads.
        GemmConfig { tm: 64, tn: 64, tk: 16, rt: 4 }
    }
}

impl GemmConfig {
    /// Threads per block implied by the tiling.
    pub fn threads(&self) -> usize {
        (self.tm / self.rt) * (self.tn / self.rt)
    }
}

/// Kernel spec of `C[m x n] = A[m x k] x B[k x n]` (row-major).
#[derive(Clone, Debug)]
pub struct GemmKernel {
    m: usize,
    k: usize,
    n: usize,
    cfg: GemmConfig,
    a: DeviceBuffer,
    b: DeviceBuffer,
    c: DeviceBuffer,
    /// Extra footprint owned by the caller's pipeline (e.g. the im2col
    /// matrix this GEMM consumes), counted for OOM checks.
    extra_footprint: u64,
}

impl GemmKernel {
    /// Build with explicit device buffers (for pipelines that share them).
    pub fn new(
        m: usize,
        k: usize,
        n: usize,
        cfg: GemmConfig,
        a: DeviceBuffer,
        b: DeviceBuffer,
        c: DeviceBuffer,
    ) -> GemmKernel {
        assert!(
            cfg.tm.is_multiple_of(cfg.rt) && cfg.tn.is_multiple_of(cfg.rt),
            "register tile must divide C tile"
        );
        GemmKernel { m, k, n, cfg, a, b, c, extra_footprint: 0 }
    }

    /// Build with freshly allocated buffers.
    pub fn with_fresh_buffers(m: usize, k: usize, n: usize, cfg: GemmConfig) -> GemmKernel {
        let mut asp = AddressSpace::new();
        let a = asp.alloc_f32((m * k) as u64);
        let b = asp.alloc_f32((k * n) as u64);
        let c = asp.alloc_f32((m * n) as u64);
        GemmKernel::new(m, k, n, cfg, a, b, c)
    }

    /// Count extra bytes toward the footprint (pipeline workspaces).
    pub fn with_extra_footprint(mut self, bytes: u64) -> GemmKernel {
        self.extra_footprint = bytes;
        self
    }

    fn grid_dims(&self) -> (usize, usize) {
        (self.m.div_ceil(self.cfg.tm), self.n.div_ceil(self.cfg.tn))
    }

    /// FLOPs of the product.
    pub fn flops(&self) -> u64 {
        2 * (self.m * self.k * self.n) as u64
    }
}

impl KernelSpec for GemmKernel {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        format!("sgemm {}x{}x{}", self.m, self.k, self.n)
    }

    fn launch(&self) -> LaunchConfig {
        let (gm, gn) = self.grid_dims();
        let smem = (self.cfg.tm * self.cfg.tk + self.cfg.tk * self.cfg.tn) * 4;
        LaunchConfig {
            grid_blocks: (gm * gn) as u64,
            threads_per_block: self.cfg.threads() as u32,
            // Accumulators + staging + addressing.
            regs_per_thread: (self.cfg.rt * self.cfg.rt + 2 * self.cfg.rt + 16) as u32,
            smem_per_block: smem as u32,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let unique = 4.0 * (self.m * self.k + self.k * self.n) as f64;
        let stores = 4.0 * (self.m * self.n) as f64;
        let footprint =
            4 * (self.m * self.k + self.k * self.n + self.m * self.n) as u64 + self.extra_footprint;
        // Register tiling gives RT independent accumulator rows in flight.
        // The sustained-peak cap calibrates to cuDNN v4's measured MM
        // convolution plateau on Kepler (Fig 4: ~1400 GFLOPS of 5121 at
        // large K): compiler-scheduled tiled SGEMM stalls on shared-memory
        // operand latency the occupancy model cannot see. Short K loops
        // never fill the software pipeline (startup/drain dominate), which
        // is the §IV.A "matrix transformation overhead is more evident when
        // the matrix size is limited" effect at small C.
        let k_ramp = 20.0;
        let cap = 0.30 * self.k as f64 / (self.k as f64 + k_ramp);
        WorkSummary::new(unique, stores, footprint)
            .with_ilp(self.cfg.rt as f64 * 2.0)
            .with_alu_cap(cap)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let (gm, gn) = self.grid_dims();
        let _ = gm;
        let bm = (block as usize / gn) * self.cfg.tm;
        let bn = (block as usize % gn) * self.cfg.tn;
        let threads = self.cfg.threads();
        let warps = threads / 32;
        let tm_eff = self.cfg.tm.min(self.m - bm);
        let tn_eff = self.cfg.tn.min(self.n - bn);

        let steps = self.k.div_ceil(self.cfg.tk);
        let mut addrs = Vec::with_capacity(32);
        for s in 0..steps {
            let k0 = s * self.cfg.tk;
            let k_eff = self.cfg.tk.min(self.k - k0);
            // Stage A tile (tm_eff x k_eff): warps cooperatively load rows;
            // consecutive lanes walk K (row-major A) — coalesced up to
            // k_eff, then the next row.
            let a_elems = tm_eff * k_eff;
            for chunk_start in (0..a_elems).step_by(32) {
                addrs.clear();
                for lane in 0..32.min(a_elems - chunk_start) {
                    let e = chunk_start + lane;
                    let (r, kk) = (e / k_eff, e % k_eff);
                    addrs.push(self.a.f32(((bm + r) * self.k + k0 + kk) as u64));
                }
                t.global_load(&addrs, 4);
            }
            // Stage B tile (k_eff x tn_eff): consecutive lanes walk N —
            // coalesced.
            let b_elems = k_eff * tn_eff;
            for chunk_start in (0..b_elems).step_by(32) {
                addrs.clear();
                for lane in 0..32.min(b_elems - chunk_start) {
                    let e = chunk_start + lane;
                    let (kk, c) = (e / tn_eff, e % tn_eff);
                    addrs.push(self.b.f32(((k0 + kk) * self.n + bn + c) as u64));
                }
                t.global_load(&addrs, 4);
            }
            // Shared-memory staging stores (conflict-free by construction:
            // consecutive lanes, consecutive words).
            let stage_addrs: Vec<u64> = (0..32u64).map(|l| l * 4).collect();
            t.shared_repeat(&stage_addrs, 4, ((a_elems + b_elems) / 32).max(1) as u64);
            t.sync();
            // Register-tile compute: per k-iteration each thread reads RT
            // A values (column broadcast within a thread row — conflict
            // free with padding) and RT B values, then does RT x RT FMAs.
            let smem_reads_per_warp = k_eff as u64 * 2 * self.cfg.rt as u64;
            t.shared_repeat(&stage_addrs, 4, smem_reads_per_warp * warps as u64);
            t.flops(2 * (tm_eff * tn_eff * k_eff) as u64);
            t.aux(warps as u64 * 4);
            t.sync();
        }
        // Write C tile: consecutive lanes along N — coalesced.
        let c_elems = tm_eff * tn_eff;
        for chunk_start in (0..c_elems).step_by(32) {
            addrs.clear();
            for lane in 0..32.min(c_elems - chunk_start) {
                let e = chunk_start + lane;
                let (r, c) = (e / tn_eff, e % tn_eff);
                addrs.push(self.c.f32(((bm + r) * self.n + bn + c) as u64));
            }
            t.global_store(&addrs, 4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};

    #[test]
    fn big_square_gemm_is_compute_bound_at_decent_utilization() {
        let d = DeviceConfig::titan_black();
        let g = GemmKernel::with_fresh_buffers(2048, 2048, 2048, GemmConfig::default());
        let r = simulate(&d, &g, &SimOptions::default()).unwrap();
        let util = r.timing.alu_utilization;
        // Capped at ~30% sustained peak (the cuDNN v4 MM calibration).
        assert!(util > 0.22, "utilization {util}");
        assert!(util <= 0.31);
        // 2 * 2048^3 = 17.2 GFLOP.
        assert!((r.flops - 17.18e9).abs() / 17.18e9 < 0.01, "flops {}", r.flops);
    }

    #[test]
    fn skinny_k_gemm_is_memory_bound() {
        // K=9 (a 3x3 single-channel conv as GEMM): almost no reuse.
        let d = DeviceConfig::titan_black();
        let g = GemmKernel::with_fresh_buffers(64, 9, 50_000, GemmConfig::default());
        let r = simulate(&d, &g, &SimOptions::default()).unwrap();
        assert!(r.timing.alu_utilization < 0.2, "util {}", r.timing.alu_utilization);
    }

    #[test]
    fn grid_covers_matrix_with_edge_tiles() {
        let g = GemmKernel::with_fresh_buffers(100, 64, 130, GemmConfig::default());
        // ceil(100/64) x ceil(130/64) = 2 x 3.
        assert_eq!(g.launch().grid_blocks, 6);
    }

    #[test]
    fn footprint_counts_all_three_matrices() {
        let g = GemmKernel::with_fresh_buffers(10, 20, 30, GemmConfig::default());
        assert_eq!(g.work().footprint_bytes, 4 * (200 + 600 + 300));
        let g2 = GemmKernel::with_fresh_buffers(10, 20, 30, GemmConfig::default())
            .with_extra_footprint(1000);
        assert_eq!(g2.work().footprint_bytes, 4 * (200 + 600 + 300) + 1000);
    }

    #[test]
    fn larger_k_amortizes_staging_and_improves_utilization() {
        let d = DeviceConfig::titan_black();
        let small_k = GemmKernel::with_fresh_buffers(512, 32, 8192, GemmConfig::default());
        let large_k = GemmKernel::with_fresh_buffers(512, 2048, 8192, GemmConfig::default());
        let rs = simulate(&d, &small_k, &SimOptions::default()).unwrap();
        let rl = simulate(&d, &large_k, &SimOptions::default()).unwrap();
        assert!(rl.timing.alu_utilization > rs.timing.alu_utilization);
    }

    #[test]
    fn trace_flops_match_analytic_flops() {
        let d = DeviceConfig::titan_black();
        let g = GemmKernel::with_fresh_buffers(256, 128, 512, GemmConfig::default());
        let r = simulate(&d, &g, &SimOptions::default()).unwrap();
        let expect = g.flops() as f64;
        assert!((r.flops - expect).abs() / expect < 1e-6);
    }
}
