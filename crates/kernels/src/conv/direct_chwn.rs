//! Direct convolution over the `CHWN` layout — the cuda-convnet family.
//!
//! §IV.A: cuda-convnet "first allocates a warp of 32 threads in a TB to
//! process 32 images such that the memory accesses are coalesced. In order
//! to further reduce off-chip memory accesses, if the batch size N is 128,
//! cuda-convnet enables each thread to handle four images so that the data
//! of these four images can be reused in the register file."
//!
//! The kernel spec reproduces that structure: blocks of 32x4 threads, the
//! warp dimension running along `N`; `imgs_per_thread` in {1, 2, 4}
//! depending on `N`; 16 filters per block staged through shared memory;
//! input loads coalesced along the innermost `N` dimension. Filters are
//! stored `Ci,Fh,Fw,Co` order (cuda-convnet convention) so filter loads
//! coalesce too.

use crate::shapes::ConvShape;
use memcnn_gpusim::{
    AddressSpace, BankMode, BlockTrace, DeviceBuffer, KernelSpec, LaunchConfig, WorkSummary,
};
use memcnn_tensor::{Layout, Tensor};
use rayon::prelude::*;

/// Filters each of the 4 thread rows accumulates in registers: 8 when the
/// filter count allows (cuda-convnet's large-layer configuration), else 4.
fn filters_per_thread(co: usize) -> usize {
    if co.is_multiple_of(32) {
        8
    } else {
        4
    }
}

/// Filters per block (B_Y = 4 thread rows x `filters_per_thread`).
fn filters_per_block(co: usize) -> usize {
    4 * filters_per_thread(co)
}

/// `imgs_per_thread` rule from cuda-convnet: 4 when a block's 32-lane warp
/// can cover 128 images, else 2 for 64, else 1.
pub fn imgs_per_thread(n: usize) -> usize {
    if n.is_multiple_of(128) {
        4
    } else if n.is_multiple_of(64) {
        2
    } else {
        1
    }
}

/// GPU kernel spec of cuda-convnet's `filterActs` direct convolution.
#[derive(Clone, Debug)]
pub struct DirectConvChwn {
    shape: ConvShape,
    input: DeviceBuffer,
    filter: DeviceBuffer,
    output: DeviceBuffer,
    ipt: usize,
}

impl DirectConvChwn {
    /// Build with fresh device buffers.
    pub fn new(shape: ConvShape) -> DirectConvChwn {
        let mut asp = AddressSpace::new();
        let input = asp.alloc_f32(shape.input_shape().len() as u64);
        let filter = asp.alloc_f32(shape.filter_shape().len() as u64);
        let output = asp.alloc_f32(shape.output_shape().len() as u64);
        DirectConvChwn { shape, input, filter, output, ipt: imgs_per_thread(shape.n) }
    }

    /// The images-per-thread register-reuse factor the kernel chose.
    pub fn images_per_thread(&self) -> usize {
        self.ipt
    }

    fn modules(&self) -> usize {
        self.shape.out_h() * self.shape.out_w()
    }

    fn co_groups(&self) -> usize {
        self.shape.co.div_ceil(filters_per_block(self.shape.co))
    }

    fn img_groups(&self) -> usize {
        self.shape.n.div_ceil(32 * self.ipt)
    }
}

impl KernelSpec for DirectConvChwn {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        format!("direct-conv-chwn {} (ipt={})", self.shape, self.ipt)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: (self.modules() * self.co_groups() * self.img_groups()) as u64,
            threads_per_block: 128,
            // Accumulators (ipt x 4 filters) + staging + addressing.
            regs_per_thread: (20 + 6 * self.ipt + filters_per_thread(self.shape.co) * self.ipt)
                as u32,
            // Double-buffered filter tile + image tile.
            smem_per_block: ((filters_per_block(self.shape.co) + 32 * self.ipt) * 4 * 2) as u32,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let s = &self.shape;
        let in_bytes = 4.0 * s.input_shape().len() as f64;
        let filt_bytes = 4.0 * s.filter_shape().len() as f64;
        let out_bytes = 4.0 * s.output_shape().len() as f64;
        let footprint = (in_bytes + filt_bytes + out_bytes) as u64;
        WorkSummary::new(in_bytes + filt_bytes, out_bytes, footprint)
            // Independent accumulator tiles per thread.
            .with_ilp((self.ipt * filters_per_thread(self.shape.co)) as f64 * 0.5)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let s = &self.shape;
        let (oh, ow) = (s.out_h(), s.out_w());
        let modules = self.modules();
        let co_groups = self.co_groups();

        let module = (block as usize) % modules;
        let co_g = (block as usize / modules) % co_groups;
        let img_g = block as usize / (modules * co_groups);
        let (oy, ox) = (module / ow, module % ow);
        let co0 = co_g * filters_per_block(s.co);
        let n0 = img_g * 32 * self.ipt;
        let n_here = (32 * self.ipt).min(s.n - n0);
        let filters_here = filters_per_block(s.co).min(s.co - co0);

        let mut addrs = Vec::with_capacity(32);
        let iters = s.ci * s.fh * s.fw;
        for ci in 0..s.ci {
            for fy in 0..s.fh {
                for fx in 0..s.fw {
                    let iy = (oy * s.stride + fy) as isize - s.pad as isize;
                    let ix = (ox * s.stride + fx) as isize - s.pad as isize;
                    // Filter tile load: [Ci][Fh][Fw][Co] layout, 16
                    // consecutive Co values — coalesced.
                    addrs.clear();
                    let frow = ((ci * s.fh + fy) * s.fw + fx) * s.co + co0;
                    for f in 0..filters_here {
                        addrs.push(self.filter.f32((frow + f) as u64));
                    }
                    t.global_load(&addrs, 4);
                    // Image loads: CHWN layout, lanes along N — coalesced.
                    if iy >= 0 && ix >= 0 && (iy as usize) < s.h && (ix as usize) < s.w {
                        let irow = ((ci * s.h + iy as usize) * s.w + ix as usize) * s.n + n0;
                        for i in 0..self.ipt {
                            addrs.clear();
                            let lane0 = i * 32;
                            if lane0 >= n_here {
                                break;
                            }
                            for lane in 0..32.min(n_here - lane0) {
                                addrs.push(self.input.f32((irow + lane0 + lane) as u64));
                            }
                            t.global_load(&addrs, 4);
                        }
                    }
                }
            }
        }

        // Shared-memory traffic, hoisted out of the loop: per iteration each
        // of the 4 warps stages and re-reads the tiles (conflict-free: unit
        // stride / broadcast patterns).
        let clean: Vec<u64> = (0..32u64).map(|l| l * 4).collect();
        // Double-buffered staging overlaps the fill with compute; per
        // iteration each warp re-reads its images and filter values.
        let smem_per_iter_per_warp = (1 + self.ipt + filters_per_thread(s.co)) as u64;
        t.shared_repeat(&clean, 4, iters as u64 * 4 * smem_per_iter_per_warp);

        // FMAs: every (ci,fy,fx) tap feeds filters_here x n_here outputs.
        t.flops(2 * (iters * filters_here * n_here) as u64);
        t.aux(iters as u64 * 4 * 2);

        // Output stores: [Co][OH][OW][N], coalesced along N.
        for f in 0..filters_here {
            let orow = ((co0 + f) * oh * ow + module) * s.n + n0;
            for i in 0..self.ipt {
                addrs.clear();
                let lane0 = i * 32;
                if lane0 >= n_here {
                    break;
                }
                for lane in 0..32.min(n_here - lane0) {
                    addrs.push(self.output.f32((orow + lane0 + lane) as u64));
                }
                t.global_store(&addrs, 4);
            }
        }
        t.sync();
    }
}

/// Functional direct convolution walking CHWN-friendly order: inner loops
/// run along `N` so the CPU implementation enjoys the same unit-stride
/// inner dimension the GPU kernel coalesces over. Input and output in
/// `CHWN`, filter in `NCHW` (`Co,Ci,Fh,Fw` order).
pub fn direct_conv_chwn(input: &Tensor, filter: &Tensor, shape: &ConvShape) -> Tensor {
    assert_eq!(input.layout(), Layout::CHWN, "direct_conv_chwn expects CHWN input");
    assert_eq!(input.shape(), shape.input_shape());
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let n = shape.n;
    let in_data = input.as_slice();
    let mut out = Tensor::zeros(shape.output_shape(), Layout::CHWN);
    // Output CHWN buffer: [Co][OH][OW][N]; parallel over (co, oy).
    let out_buf = out.as_mut_slice();
    out_buf.par_chunks_mut(ow * n).enumerate().for_each(|(row_idx, row)| {
        let co = row_idx / oh;
        let oy = row_idx % oh;
        for ox in 0..ow {
            let acc = &mut row[ox * n..(ox + 1) * n];
            for ci in 0..shape.ci {
                for fy in 0..shape.fh {
                    for fx in 0..shape.fw {
                        let iy = (oy * shape.stride + fy) as isize - shape.pad as isize;
                        let ix = (ox * shape.stride + fx) as isize - shape.pad as isize;
                        if iy < 0 || ix < 0 || iy as usize >= shape.h || ix as usize >= shape.w {
                            continue;
                        }
                        let w = filter.get(co, ci, fy, fx);
                        if w == 0.0 {
                            continue;
                        }
                        let in_row = ((ci * shape.h + iy as usize) * shape.w + ix as usize) * n;
                        for (a, &x) in acc.iter_mut().zip(&in_data[in_row..in_row + n]) {
                            *a += w * x;
                        }
                    }
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv_reference;
    use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};

    #[test]
    fn imgs_per_thread_rule() {
        assert_eq!(imgs_per_thread(128), 4);
        assert_eq!(imgs_per_thread(256), 4);
        assert_eq!(imgs_per_thread(64), 2);
        assert_eq!(imgs_per_thread(32), 1);
        assert_eq!(imgs_per_thread(16), 1);
    }

    #[test]
    fn functional_matches_reference() {
        let s = ConvShape::table1(8, 16, 9, 3, 4, 1);
        let input = Tensor::random(s.input_shape(), Layout::CHWN, 1);
        let filter = Tensor::random(s.filter_shape(), Layout::NCHW, 2);
        let got = direct_conv_chwn(&input, &filter, &s);
        let want = conv_reference(&input, &filter, &s, Layout::CHWN).unwrap();
        assert!(got.approx_eq(&want, 1e-3), "diff {}", got.max_abs_diff(&want).unwrap());
    }

    #[test]
    fn functional_handles_stride_and_pad() {
        let s = ConvShape { pad: 1, ..ConvShape::table1(4, 8, 10, 3, 2, 2) };
        let input = Tensor::random(s.input_shape(), Layout::CHWN, 3);
        let filter = Tensor::random(s.filter_shape(), Layout::NCHW, 4);
        let got = direct_conv_chwn(&input, &filter, &s);
        let want = conv_reference(&input, &filter, &s, Layout::CHWN).unwrap();
        assert!(got.approx_eq(&want, 1e-3));
    }

    #[test]
    fn spec_flops_match_shape_flops() {
        let s = ConvShape::table1(128, 64, 12, 5, 64, 1); // CONV4
        let k = DirectConvChwn::new(s);
        let d = DeviceConfig::titan_black();
        let r = simulate(&d, &k, &SimOptions::default()).unwrap();
        let expect = s.flops() as f64;
        assert!((r.flops - expect).abs() / expect < 0.02, "{} vs {expect}", r.flops);
    }

    #[test]
    fn input_loads_are_coalesced() {
        let s = ConvShape::table1(128, 16, 28, 5, 1, 1); // CONV1
        let d = DeviceConfig::titan_black();
        let r = simulate(&d, &DirectConvChwn::new(s), &SimOptions::default()).unwrap();
        let overfetch = r.transaction_bytes / r.requested_bytes;
        assert!(overfetch < 1.3, "overfetch {overfetch}");
    }

    #[test]
    fn batch_128_beats_batch_32_in_throughput() {
        // The paper's Fig 4a mechanism: N=128 gets 4x register reuse.
        let d = DeviceConfig::titan_black();
        let mk = |n| ConvShape::table1(n, 384, 13, 3, 256, 1); // CONV7 shape
        let r128 = simulate(&d, &DirectConvChwn::new(mk(128)), &SimOptions::default()).unwrap();
        let r32 = simulate(&d, &DirectConvChwn::new(mk(32)), &SimOptions::default()).unwrap();
        assert!(
            r128.gflops() > 1.5 * r32.gflops(),
            "128: {:.0} GF/s, 32: {:.0} GF/s",
            r128.gflops(),
            r32.gflops()
        );
    }

    #[test]
    fn grid_decomposition_counts() {
        let s = ConvShape::table1(128, 64, 24, 5, 3, 1); // CONV3: 20x20 out
        let k = DirectConvChwn::new(s);
        // modules=400, co_groups=2 (32 filters/block at Co=64), img_groups=1.
        assert_eq!(k.launch().grid_blocks, 400 * 2);
    }

    #[test]
    fn partial_warp_small_batch() {
        let s = ConvShape::table1(16, 16, 9, 3, 4, 1);
        let d = DeviceConfig::titan_black();
        let r = simulate(&d, &DirectConvChwn::new(s), &SimOptions::default()).unwrap();
        // Work still matches the analytic FLOP count.
        assert!((r.flops - s.flops() as f64).abs() / (s.flops() as f64) < 0.02);
    }
}
