//! FFT-based convolution over `NCHW` — cuDNN v4's `FFT` and `FFT_TILING`
//! modes (§IV.A "Data Layouts in FFT-based Implementations", Fig 5).
//!
//! Pipeline: (1) batched 2D FFT of the input feature maps, (2) batched 2D
//! FFT of the zero-padded filters, (3) per-frequency complex products
//! accumulated over `Ci` (a small CGEMM per frequency bin), (4) batched
//! inverse FFT and crop. The tiling variant runs the same pipeline over
//! 32x32 tiles to shrink the padded frames.
//!
//! Two failure modes from the paper are reproduced:
//!
//! - **Unsupported stride**: cuDNN v4's FFT modes require stride 1; CV5 and
//!   CV6 (the only strided layers in Table 1) are exactly the layers Fig 5
//!   reports as "execution failures". Construction returns
//!   [`ConvError::Unsupported`] for them. (The paper attributes the failures
//!   to the 6 GB memory limit; CV5's frames alone need ~7 GB with
//!   double-buffered workspaces, so both explanations coincide there.)
//! - **Out of memory**: declared footprints include the complex frames and
//!   a 2x cuFFT workspace factor, so over-budget configurations fail at
//!   simulation time with [`memcnn_gpusim::SimError::OutOfMemory`].

use crate::conv::ConvError;
use crate::shapes::ConvShape;
use memcnn_fft::{fft_correlate2d, next_pow2};
use memcnn_gpusim::{
    simulate_sequence, AddressSpace, BankMode, BlockTrace, DeviceBuffer, DeviceConfig, KernelSpec,
    LaunchConfig, SequenceReport, SimError, SimOptions, WorkSummary,
};
use memcnn_tensor::{Layout, Tensor};
use rayon::prelude::*;

/// Which FFT convolution variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FftConvMode {
    /// Whole-image frames (cuDNN `FFT`): fastest when it fits, hungriest.
    Full,
    /// 32x32 tiled frames (cuDNN `FFT_TILING`): bounded padding overhead.
    Tiled,
}

/// Tile edge of the tiling variant (the paper: "splits the inputs into
/// 32x32 tiles").
pub const TILE: usize = 32;

/// cuFFT-style workspace multiplier on the complex frames (plan workspace
/// plus double buffering).
const WORKSPACE_FACTOR: f64 = 2.0;

/// The FFT convolution pipeline.
#[derive(Clone, Debug)]
pub struct FftConvNchw {
    shape: ConvShape,
    mode: FftConvMode,
    /// Frame edge (power of two).
    frame: usize,
    /// Tiles per image (1 for Full).
    tiles: usize,
    buffers: FftBuffers,
}

#[derive(Clone, Copy, Debug)]
struct FftBuffers {
    input: DeviceBuffer,
    in_freq: DeviceBuffer,
    filt_freq: DeviceBuffer,
    out_freq: DeviceBuffer,
    output: DeviceBuffer,
    total_bytes: u64,
}

impl FftConvNchw {
    /// Build the pipeline; fails for strided convolutions (cuDNN v4 FFT
    /// limitation).
    pub fn new(shape: ConvShape, mode: FftConvMode) -> Result<FftConvNchw, ConvError> {
        shape.validate().map_err(ConvError::Unsupported)?;
        if shape.stride != 1 {
            return Err(ConvError::Unsupported(format!(
                "FFT convolution requires stride 1, got {} (cuDNN v4 limitation)",
                shape.stride
            )));
        }
        let (frame, tiles) = match mode {
            FftConvMode::Full => {
                (next_pow2((shape.h + 2 * shape.pad).max(shape.w + 2 * shape.pad)), 1)
            }
            FftConvMode::Tiled => {
                if shape.fh >= TILE || shape.fw >= TILE {
                    return Err(ConvError::Unsupported(format!(
                        "FFT tiling requires filters smaller than the {TILE}x{TILE} tile"
                    )));
                }
                let padded = (shape.h + 2 * shape.pad).max(shape.w + 2 * shape.pad);
                if padded + shape.fh - 1 <= TILE {
                    // Image already fits one tile: identical to whole-image
                    // frames (cuDNN's FFT_TILING degenerates the same way).
                    (next_pow2(padded), 1)
                } else {
                    let eff = TILE - shape.fh + 1;
                    let t1d = shape.out_h().div_ceil(eff);
                    (TILE, t1d * t1d)
                }
            }
        };
        let complex_per_frame = (frame * frame * 2) as u64; // f32 pairs
        let mut asp = AddressSpace::new();
        let input = asp.alloc_f32(shape.input_shape().len() as u64);
        let in_freq = asp.alloc_f32((shape.n * shape.ci * tiles) as u64 * complex_per_frame);
        let filt_freq = asp.alloc_f32((shape.co * shape.ci) as u64 * complex_per_frame);
        let out_freq = asp.alloc_f32((shape.n * shape.co * tiles) as u64 * complex_per_frame);
        let output = asp.alloc_f32(shape.output_shape().len() as u64);
        let freq_bytes = in_freq.bytes + filt_freq.bytes + out_freq.bytes;
        let total_bytes =
            input.bytes + output.bytes + (freq_bytes as f64 * WORKSPACE_FACTOR) as u64;
        Ok(FftConvNchw {
            shape,
            mode,
            frame,
            tiles,
            buffers: FftBuffers { input, in_freq, filt_freq, out_freq, output, total_bytes },
        })
    }

    /// The convolution shape.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// Frame edge used for the transforms.
    pub fn frame(&self) -> usize {
        self.frame
    }

    /// Tiles per image.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Total device-memory footprint in bytes (incl. workspace factor).
    pub fn footprint_bytes(&self) -> u64 {
        self.buffers.total_bytes
    }

    /// The pipeline's kernels in execution order.
    pub fn kernels(&self) -> Vec<Box<dyn KernelSpec + Send>> {
        let s = &self.shape;
        let b = &self.buffers;
        vec![
            Box::new(FftTransformKernel {
                name: format!("fft-fwd-input {}", self.mode_tag()),
                batch: s.n * s.ci * self.tiles,
                frame: self.frame,
                src: b.input,
                src_real_elems: s.input_shape().len() as u64,
                dst: b.in_freq,
                inverse: false,
                footprint: b.total_bytes,
            }),
            Box::new(FftTransformKernel {
                name: format!("fft-fwd-filter {}", self.mode_tag()),
                batch: s.co * s.ci,
                frame: self.frame,
                src: b.input, // filters live with input for modelling purposes
                src_real_elems: s.filter_shape().len() as u64,
                dst: b.filt_freq,
                inverse: false,
                footprint: b.total_bytes,
            }),
            Box::new(FftPointwiseKernel {
                shape: *s,
                frame: self.frame,
                tiles: self.tiles,
                in_freq: b.in_freq,
                filt_freq: b.filt_freq,
                out_freq: b.out_freq,
                footprint: b.total_bytes,
            }),
            Box::new(FftTransformKernel {
                name: format!("fft-inv-output {}", self.mode_tag()),
                batch: s.n * s.co * self.tiles,
                frame: self.frame,
                src: b.out_freq,
                src_real_elems: 0,
                dst: b.output,
                inverse: true,
                footprint: b.total_bytes,
            }),
        ]
    }

    fn mode_tag(&self) -> &'static str {
        match self.mode {
            FftConvMode::Full => "full",
            FftConvMode::Tiled => "tiled",
        }
    }

    /// Simulate the pipeline (OOM surfaces here, as in the paper's Fig 5).
    pub fn simulate(
        &self,
        device: &DeviceConfig,
        opts: &SimOptions,
    ) -> Result<SequenceReport, SimError> {
        let kernels = self.kernels();
        let refs: Vec<&dyn KernelSpec> = kernels.iter().map(|k| k.as_ref() as _).collect();
        simulate_sequence(device, &refs, opts)
    }
}

/// Batched 2D FFT kernel (forward or inverse): streams frames through
/// shared memory with `log2` butterfly stages.
#[derive(Debug)]
struct FftTransformKernel {
    name: String,
    batch: usize,
    frame: usize,
    src: DeviceBuffer,
    /// Real elements actually read for forward transforms (padding reads
    /// nothing); 0 means complex source (inverse path).
    src_real_elems: u64,
    dst: DeviceBuffer,
    inverse: bool,
    footprint: u64,
}

impl FftTransformKernel {
    fn elems_per_frame(&self) -> usize {
        self.frame * self.frame
    }
}

impl KernelSpec for FftTransformKernel {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn launch(&self) -> LaunchConfig {
        let total = self.batch * self.elems_per_frame();
        LaunchConfig {
            grid_blocks: (total.div_ceil(256)).max(1) as u64,
            threads_per_block: 256,
            regs_per_thread: 40,
            smem_per_block: 256 * 8 * 2,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let complex_bytes = (self.batch * self.elems_per_frame() * 8) as f64;
        let (reads, writes) = if self.inverse {
            (complex_bytes, complex_bytes / 2.0) // crop to real
        } else {
            (self.src_real_elems as f64 * 4.0, complex_bytes)
        };
        WorkSummary::new(reads, writes, self.footprint).with_ilp(4.0)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let total = (self.batch * self.elems_per_frame()) as u64;
        let base = block * 256;
        let stages = (self.elems_per_frame().max(2)).ilog2() as u64;
        let mut addrs = Vec::with_capacity(32);
        for w in 0..8u64 {
            addrs.clear();
            for lane in 0..32u64 {
                let idx = base + w * 32 + lane;
                if idx >= total {
                    break;
                }
                if self.inverse {
                    addrs.push(self.src.addr(idx, 8));
                } else if idx < self.src_real_elems {
                    addrs.push(self.src.f32(idx % (self.src.bytes / 4)));
                }
            }
            t.global_load(&addrs, if self.inverse { 8 } else { 4 });
            addrs.clear();
            for lane in 0..32u64 {
                let idx = base + w * 32 + lane;
                if idx >= total {
                    break;
                }
                addrs.push(self.dst.addr(idx % (self.dst.bytes / 8), 8));
            }
            t.global_store(&addrs, if self.inverse { 4 } else { 8 });
        }
        // Butterfly stages in shared memory: one exchange pass per stage
        // per warp, plus ~10 FLOPs per point per stage.
        let clean: Vec<u64> = (0..32u64).map(|l| l * 8).collect();
        t.shared_repeat(&clean, 8, stages * 8 * 2);
        t.flops(10 * 256 * stages);
        t.aux(8 * stages);
    }
}

/// Per-frequency complex products accumulated over `Ci`: `frame^2`
/// independent CGEMMs of `[N x Ci] x [Ci x Co]` (tiled 32x32).
#[derive(Debug)]
struct FftPointwiseKernel {
    shape: ConvShape,
    frame: usize,
    tiles: usize,
    in_freq: DeviceBuffer,
    filt_freq: DeviceBuffer,
    out_freq: DeviceBuffer,
    footprint: u64,
}

impl KernelSpec for FftPointwiseKernel {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        format!("fft-pointwise cgemm x{}", self.frame * self.frame)
    }

    fn launch(&self) -> LaunchConfig {
        let s = &self.shape;
        let bins = self.frame * self.frame;
        let blocks_per_bin = (s.n * self.tiles).div_ceil(32).max(1) * s.co.div_ceil(32).max(1);
        LaunchConfig {
            grid_blocks: (bins * blocks_per_bin) as u64,
            threads_per_block: 256,
            regs_per_thread: 48,
            smem_per_block: 2 * 32 * 8 * 8,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let s = &self.shape;
        let bins = (self.frame * self.frame) as f64;
        let nt = (s.n * self.tiles) as f64;
        let reads = bins * 8.0 * (nt * s.ci as f64 + (s.ci * s.co) as f64);
        let writes = bins * 8.0 * nt * s.co as f64;
        WorkSummary::new(reads, writes, self.footprint).with_ilp(8.0)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let s = &self.shape;
        let nt = s.n * self.tiles;
        let n_tiles = nt.div_ceil(32).max(1);
        let co_tiles = s.co.div_ceil(32).max(1);
        let per_bin = (n_tiles * co_tiles) as u64;
        let bin = block / per_bin;
        let within = block % per_bin;
        let n0 = (within as usize / co_tiles) * 32;
        let co0 = (within as usize % co_tiles) * 32;
        let n_here = 32.min(nt - n0);
        let co_here = 32.min(s.co - co0);

        // Frequency data is stored bin-major ([bin][frame]), the
        // interleaved layout cuDNN's FFT path uses precisely so these
        // per-bin GEMM reads coalesce.
        let in_frames = (s.n * self.tiles * s.ci) as u64;
        let filt_frames = (s.co * s.ci) as u64;
        let out_frames = (s.n * self.tiles * s.co) as u64;
        let mut addrs = Vec::with_capacity(32);
        for ci in 0..s.ci {
            // Load A column: in_freq[bin][ci][n] — consecutive n.
            addrs.clear();
            for i in 0..n_here.min(32) {
                let frame_idx = (ci * s.n * self.tiles + n0 + i) as u64;
                addrs.push(self.in_freq.addr(bin * in_frames + frame_idx, 8));
            }
            t.global_load(&addrs, 8);
            // Load B row: filt_freq[bin][ci][co] — consecutive co.
            addrs.clear();
            for j in 0..co_here.min(32) {
                let frame_idx = (ci * s.co + co0 + j) as u64;
                addrs.push(self.filt_freq.addr(bin * filt_frames + frame_idx, 8));
            }
            t.global_load(&addrs, 8);
            // Complex FMA tile: 8 real FLOPs per complex MAC.
            t.flops((8 * n_here * co_here) as u64);
        }
        let clean: Vec<u64> = (0..32u64).map(|l| l * 8).collect();
        t.shared_repeat(&clean, 8, s.ci as u64 * 4);
        t.aux(s.ci as u64 * 2);
        // Store C tile, bin-major.
        for i in 0..n_here {
            addrs.clear();
            for j in 0..co_here.min(32) {
                let frame_idx = ((n0 + i) * s.co + co0 + j) as u64;
                addrs.push(self.out_freq.addr(bin * out_frames + frame_idx, 8));
            }
            t.global_store(&addrs, 8);
        }
    }
}

/// Functional FFT convolution (whole frames): per `(n, co)`, accumulate the
/// per-channel frequency products and invert once. Matches the direct
/// reference to numerical tolerance.
pub fn fft_conv_forward(
    input: &Tensor,
    filter: &Tensor,
    shape: &ConvShape,
    out_layout: Layout,
) -> Result<Tensor, ConvError> {
    if shape.stride != 1 {
        return Err(ConvError::Unsupported("FFT convolution requires stride 1".into()));
    }
    if shape.pad != 0 {
        return Err(ConvError::Unsupported(
            "functional FFT path implemented for pad 0 (pad the input first)".into(),
        ));
    }
    let input = input.to_layout(Layout::NCHW);
    let filter = filter.to_layout(Layout::NCHW);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut out = Tensor::zeros(shape.output_shape(), out_layout);
    let planes: Vec<((usize, usize), Vec<f32>)> = (0..shape.n * shape.co)
        .into_par_iter()
        .map(|idx| {
            let (n, co) = (idx / shape.co, idx % shape.co);
            let mut acc = vec![0f32; oh * ow];
            for ci in 0..shape.ci {
                let img: Vec<f32> = (0..shape.h * shape.w)
                    .map(|e| input.get(n, ci, e / shape.w, e % shape.w))
                    .collect();
                let ker: Vec<f32> = (0..shape.fh * shape.fw)
                    .map(|e| filter.get(co, ci, e / shape.fw, e % shape.fw))
                    .collect();
                let part = fft_correlate2d(&img, shape.h, shape.w, &ker, shape.fh, shape.fw);
                for (a, p) in acc.iter_mut().zip(&part) {
                    *a += p;
                }
            }
            ((n, co), acc)
        })
        .collect();
    for ((n, co), plane) in planes {
        for oy in 0..oh {
            for ox in 0..ow {
                out.set(n, co, oy, ox, plane[oy * ow + ox]);
            }
        }
    }
    Ok(out)
}

/// Functional tiled FFT convolution: per 32x32 tile (with filter halo),
/// correlate in the frequency domain and stitch. Semantically identical to
/// [`fft_conv_forward`]; exists to validate the tiling decomposition.
pub fn fft_conv_forward_tiled(
    input: &Tensor,
    filter: &Tensor,
    shape: &ConvShape,
    out_layout: Layout,
) -> Result<Tensor, ConvError> {
    if shape.stride != 1 || shape.pad != 0 {
        return Err(ConvError::Unsupported("tiled FFT path requires stride 1, pad 0".into()));
    }
    if shape.fh >= TILE || shape.fw >= TILE {
        return Err(ConvError::Unsupported("filter must be smaller than the tile".into()));
    }
    let input = input.to_layout(Layout::NCHW);
    let filter = filter.to_layout(Layout::NCHW);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let eff = TILE - shape.fh + 1;
    let mut out = Tensor::zeros(shape.output_shape(), out_layout);
    for n in 0..shape.n {
        for co in 0..shape.co {
            for ty in (0..oh).step_by(eff) {
                for tx in (0..ow).step_by(eff) {
                    let th = eff.min(oh - ty);
                    let tw = eff.min(ow - tx);
                    let ih = th + shape.fh - 1;
                    let iw = tw + shape.fw - 1;
                    let mut acc = vec![0f32; th * tw];
                    for ci in 0..shape.ci {
                        let img: Vec<f32> = (0..ih * iw)
                            .map(|e| input.get(n, ci, ty + e / iw, tx + e % iw))
                            .collect();
                        let ker: Vec<f32> = (0..shape.fh * shape.fw)
                            .map(|e| filter.get(co, ci, e / shape.fw, e % shape.fw))
                            .collect();
                        let part = fft_correlate2d(&img, ih, iw, &ker, shape.fh, shape.fw);
                        for (a, p) in acc.iter_mut().zip(&part) {
                            *a += p;
                        }
                    }
                    for dy in 0..th {
                        for dx in 0..tw {
                            out.set(n, co, ty + dy, tx + dx, acc[dy * tw + dx]);
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv_reference;

    #[test]
    fn functional_fft_matches_direct() {
        let s = ConvShape::table1(2, 3, 12, 5, 2, 1);
        let input = Tensor::random(s.input_shape(), Layout::NCHW, 10);
        let filter = Tensor::random(s.filter_shape(), Layout::NCHW, 11);
        let fft = fft_conv_forward(&input, &filter, &s, Layout::NCHW).unwrap();
        let direct = conv_reference(&input, &filter, &s, Layout::NCHW).unwrap();
        assert!(fft.approx_eq(&direct, 1e-2), "diff {}", fft.max_abs_diff(&direct).unwrap());
    }

    #[test]
    fn functional_tiled_matches_direct_across_tile_seams() {
        // 40x40 input: outputs span two tiles in each dimension.
        let s = ConvShape::table1(1, 2, 40, 3, 2, 1);
        let input = Tensor::random(s.input_shape(), Layout::NCHW, 12);
        let filter = Tensor::random(s.filter_shape(), Layout::NCHW, 13);
        let tiled = fft_conv_forward_tiled(&input, &filter, &s, Layout::NCHW).unwrap();
        let direct = conv_reference(&input, &filter, &s, Layout::NCHW).unwrap();
        assert!(tiled.approx_eq(&direct, 1e-2), "diff {}", tiled.max_abs_diff(&direct).unwrap());
    }

    #[test]
    fn strided_conv_is_rejected() {
        // CV5 and CV6 — the Fig 5 "execution failures".
        let cv5 = ConvShape::table1(64, 96, 224, 3, 3, 2);
        let cv6 = ConvShape::table1(64, 256, 55, 5, 96, 2);
        for s in [cv5, cv6] {
            for mode in [FftConvMode::Full, FftConvMode::Tiled] {
                assert!(matches!(FftConvNchw::new(s, mode), Err(ConvError::Unsupported(_))));
            }
        }
    }

    #[test]
    fn cv5_would_also_exceed_device_memory() {
        // Even without the stride gate, CV5's frames exceed 6 GB: check the
        // footprint arithmetic on the stride-1 variant of its shape.
        let s = ConvShape::table1(64, 96, 224, 3, 3, 1);
        let p = FftConvNchw::new(s, FftConvMode::Full).unwrap();
        assert!(p.frame() == 256);
        assert!(
            p.footprint_bytes() > 6 * 1024 * 1024 * 1024,
            "footprint {:.2} GB",
            p.footprint_bytes() as f64 / (1 << 30) as f64
        );
        let d = DeviceConfig::titan_black();
        assert!(matches!(
            p.simulate(&d, &SimOptions::default()),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn tiling_shrinks_the_footprint() {
        let s = ConvShape::table1(32, 256, 56, 3, 128, 1); // CV10
        let full = FftConvNchw::new(s, FftConvMode::Full).unwrap();
        let tiled = FftConvNchw::new(s, FftConvMode::Tiled).unwrap();
        assert!(tiled.footprint_bytes() < full.footprint_bytes());
        assert_eq!(full.tiles(), 1);
        assert!(tiled.tiles() > 1);
    }

    #[test]
    fn pipeline_simulates_on_supported_layers() {
        let s = ConvShape::table1(64, 384, 13, 3, 256, 1); // CV7
        let d = DeviceConfig::titan_black();
        let p = FftConvNchw::new(s, FftConvMode::Full).unwrap();
        let r = p.simulate(&d, &SimOptions::default()).unwrap();
        assert_eq!(r.kernels.len(), 4);
        assert!(r.time() > 0.0);
    }

    #[test]
    fn fft_beats_mm_on_large_filter_many_channel_layers() {
        // Fig 5: "The FFT-based approach can perform better than cuDNN-MM
        // when the filter kernel is large ... or there are many channels
        // such as CV7, CV10".
        use crate::conv::mm_nchw::MmConvNchw;
        let s = ConvShape::table1(64, 384, 13, 3, 256, 1); // CV7
        let d = DeviceConfig::titan_black();
        let fft = FftConvNchw::new(s, FftConvMode::Full).unwrap();
        let rf = fft.simulate(&d, &SimOptions::default()).unwrap();
        let rm = MmConvNchw::new(s).simulate(&d, &SimOptions::default()).unwrap();
        assert!(
            rf.time() < rm.time(),
            "fft {:.3} ms vs mm {:.3} ms",
            rf.time() * 1e3,
            rm.time() * 1e3
        );
    }

    #[test]
    fn fft_loses_on_small_channel_layers() {
        // Fig 5: "for small channel sizes, such as CV3, CV9, it performs
        // much worse than the MM method".
        use crate::conv::mm_nchw::MmConvNchw;
        let s = ConvShape::table1(128, 64, 24, 5, 3, 1); // CV3
        let d = DeviceConfig::titan_black();
        let fft = FftConvNchw::new(s, FftConvMode::Full).unwrap();
        let rf = fft.simulate(&d, &SimOptions::default()).unwrap();
        let rm = MmConvNchw::new(s).simulate(&d, &SimOptions::default()).unwrap();
        assert!(
            rf.time() > rm.time(),
            "fft {:.3} ms vs mm {:.3} ms",
            rf.time() * 1e3,
            rm.time() * 1e3
        );
    }
}
