//! Winograd F(2x2, 3x3) convolution — the paper's §VII outlook.
//!
//! "We also observe that like the FFT approach, more techniques leveraging
//! arithmetic complexity may be proposed in the future for CNNs, e.g., the
//! recent proposal from Nervana Systems [16]." Reference [16] is Lavin &
//! Gray's fast algorithms paper; its F(2x2, 3x3) variant computes each 2x2
//! output tile with 16 multiplies instead of 36 (a 2.25x reduction) by
//! transforming 4x4 input tiles and the 3x3 filters into a common domain,
//! doing an element-wise product accumulated over channels (16 independent
//! `[N*tiles x Ci] x [Ci x Co]` GEMMs), and transforming back.
//!
//! Like the FFT path it inherits the `NCHW` layout and the stride-1
//! limitation — and unlike FFT its domain is real 4x4 tiles, so the
//! memory overhead is bounded (no large-frame padding).

use crate::conv::ConvError;
use crate::gemm_model::{GemmConfig, GemmKernel};
use crate::shapes::ConvShape;
use memcnn_gpusim::{
    simulate_sequence, AddressSpace, BankMode, BlockTrace, DeviceBuffer, DeviceConfig, KernelSpec,
    LaunchConfig, SequenceReport, SimError, SimOptions, WorkSummary,
};
use memcnn_tensor::{Layout, Tensor};
use rayon::prelude::*;

/// Output tile edge (m in F(m x m, r x r)).
const M: usize = 2;
/// Filter edge (r).
const R: usize = 3;
/// Transformed tile edge (m + r - 1).
const T: usize = M + R - 1;

/// 1D input transform `B^T d` for F(2,3) applied along one axis of a 4-vec.
#[inline]
fn bt(d: [f32; 4]) -> [f32; 4] {
    [d[0] - d[2], d[1] + d[2], d[2] - d[1], d[1] - d[3]]
}

/// 1D filter transform `G g`: 3 taps -> 4 values.
#[inline]
fn g(w: [f32; 3]) -> [f32; 4] {
    [w[0], 0.5 * (w[0] + w[1] + w[2]), 0.5 * (w[0] - w[1] + w[2]), w[2]]
}

/// 1D output transform `A^T m`: 4 values -> 2 outputs.
#[inline]
fn at(m: [f32; 4]) -> [f32; 2] {
    [m[0] + m[1] + m[2], m[1] - m[2] - m[3]]
}

/// Transform a 4x4 input tile: `V = B^T d B`.
fn transform_input_tile(d: &[[f32; 4]; 4]) -> [[f32; 4]; 4] {
    let mut rows = [[0f32; 4]; 4];
    for (row, out) in d.iter().zip(rows.iter_mut()) {
        *out = bt(*row);
    }
    let mut v = [[0f32; 4]; 4];
    for c in 0..4 {
        let col = bt([rows[0][c], rows[1][c], rows[2][c], rows[3][c]]);
        for r in 0..4 {
            v[r][c] = col[r];
        }
    }
    v
}

/// Transform a 3x3 filter: `U = G g G^T`.
fn transform_filter(w: &[[f32; 3]; 3]) -> [[f32; 4]; 4] {
    let mut rows = [[0f32; 4]; 3];
    for (row, out) in w.iter().zip(rows.iter_mut()) {
        *out = g(*row);
    }
    let mut u = [[0f32; 4]; 4];
    for c in 0..4 {
        let col = g([rows[0][c], rows[1][c], rows[2][c]]);
        for r in 0..4 {
            u[r][c] = col[r];
        }
    }
    u
}

/// Inverse-transform an accumulated 4x4 tile: `Y = A^T M A` (2x2).
fn transform_output_tile(m: &[[f32; 4]; 4]) -> [[f32; 2]; 2] {
    let mut rows = [[0f32; 2]; 4];
    for (row, out) in m.iter().zip(rows.iter_mut()) {
        *out = at(*row);
    }
    let mut y = [[0f32; 2]; 2];
    for c in 0..2 {
        let col = at([rows[0][c], rows[1][c], rows[2][c], rows[3][c]]);
        for r in 0..2 {
            y[r][c] = col[r];
        }
    }
    y
}

/// Functional Winograd convolution (3x3, stride 1; padding by
/// materialization). Matches [`crate::conv::conv_reference`] to fp32
/// tolerance.
pub fn winograd_conv_forward(
    input: &Tensor,
    filter: &Tensor,
    shape: &ConvShape,
    out_layout: Layout,
) -> Result<Tensor, ConvError> {
    if shape.fh != R || shape.fw != R || shape.stride != 1 {
        return Err(ConvError::Unsupported(
            "Winograd F(2x2,3x3) requires 3x3 filters with stride 1".into(),
        ));
    }
    let input = input.to_layout(Layout::NCHW);
    let filter = filter.to_layout(Layout::NCHW);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let (ph, pw) = (shape.h + 2 * shape.pad, shape.w + 2 * shape.pad);

    // Pre-transform all filters.
    let filters_u: Vec<[[f32; 4]; 4]> = (0..shape.co * shape.ci)
        .map(|idx| {
            let (co, ci) = (idx / shape.ci, idx % shape.ci);
            let mut w = [[0f32; 3]; 3];
            for (fy, row) in w.iter_mut().enumerate() {
                for (fx, v) in row.iter_mut().enumerate() {
                    *v = filter.get(co, ci, fy, fx);
                }
            }
            transform_filter(&w)
        })
        .collect();

    let padded_get = |n: usize, ci: usize, y: isize, x: isize| -> f32 {
        let (y, x) = (y - shape.pad as isize, x - shape.pad as isize);
        if y >= 0 && x >= 0 && (y as usize) < shape.h && (x as usize) < shape.w {
            input.get(n, ci, y as usize, x as usize)
        } else {
            0.0
        }
    };
    let _ = (ph, pw);

    let tiles_y = oh.div_ceil(M);
    let tiles_x = ow.div_ceil(M);
    let mut out = Tensor::zeros(shape.output_shape(), out_layout);
    let planes: Vec<((usize, usize), Vec<f32>)> = (0..shape.n * shape.co)
        .into_par_iter()
        .map(|idx| {
            let (n, co) = (idx / shape.co, idx % shape.co);
            let mut plane = vec![0f32; oh * ow];
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    let mut acc = [[0f32; 4]; 4];
                    for ci in 0..shape.ci {
                        let mut d = [[0f32; 4]; 4];
                        for (r, row) in d.iter_mut().enumerate() {
                            for (c, v) in row.iter_mut().enumerate() {
                                *v =
                                    padded_get(n, ci, (ty * M + r) as isize, (tx * M + c) as isize);
                            }
                        }
                        let v = transform_input_tile(&d);
                        let u = &filters_u[co * shape.ci + ci];
                        for r in 0..T {
                            for c in 0..T {
                                acc[r][c] += u[r][c] * v[r][c];
                            }
                        }
                    }
                    let y = transform_output_tile(&acc);
                    for (dy, row) in y.iter().enumerate() {
                        for (dx, &val) in row.iter().enumerate() {
                            let (oy, ox) = (ty * M + dy, tx * M + dx);
                            if oy < oh && ox < ow {
                                plane[oy * ow + ox] = val;
                            }
                        }
                    }
                }
            }
            ((n, co), plane)
        })
        .collect();
    for ((n, co), plane) in planes {
        for oy in 0..oh {
            for ox in 0..ow {
                out.set(n, co, oy, ox, plane[oy * ow + ox]);
            }
        }
    }
    Ok(out)
}

/// GPU pipeline spec of Winograd convolution: input transform, filter
/// transform, 16 batched GEMMs, output transform.
#[derive(Clone, Debug)]
pub struct WinogradConvNchw {
    shape: ConvShape,
    tiles: usize,
    input: DeviceBuffer,
    v_buf: DeviceBuffer,
    u_buf: DeviceBuffer,
    m_buf: DeviceBuffer,
    output: DeviceBuffer,
    footprint: u64,
}

impl WinogradConvNchw {
    /// Build the pipeline; 3x3 stride-1 only.
    pub fn new(shape: ConvShape) -> Result<WinogradConvNchw, ConvError> {
        shape.validate().map_err(ConvError::Unsupported)?;
        if shape.fh != R || shape.fw != R || shape.stride != 1 {
            return Err(ConvError::Unsupported(
                "Winograd F(2x2,3x3) requires 3x3 filters with stride 1".into(),
            ));
        }
        let tiles_1d = shape.out_h().div_ceil(M);
        let tiles = tiles_1d * tiles_1d;
        let mut asp = AddressSpace::new();
        let input = asp.alloc_f32(shape.input_shape().len() as u64);
        let v_buf = asp.alloc_f32((shape.n * shape.ci * tiles * T * T) as u64);
        let u_buf = asp.alloc_f32((shape.co * shape.ci * T * T) as u64);
        let m_buf = asp.alloc_f32((shape.n * shape.co * tiles * T * T) as u64);
        let output = asp.alloc_f32(shape.output_shape().len() as u64);
        let footprint = asp.footprint();
        Ok(WinogradConvNchw { shape, tiles, input, v_buf, u_buf, m_buf, output, footprint })
    }

    /// Tiles per image.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Multiply count relative to direct convolution (2.25x fewer for
    /// interior tiles).
    pub fn multiply_reduction(&self) -> f64 {
        (M * M * R * R) as f64 / (T * T) as f64
    }

    /// Device-memory footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    /// The pipeline's kernels in execution order.
    pub fn kernels(&self) -> Vec<Box<dyn KernelSpec + Send>> {
        let s = &self.shape;
        vec![
            Box::new(WinogradTransformKernel {
                name: "winograd-input-transform".into(),
                items: s.n * s.ci * self.tiles,
                read_bytes: 4.0 * s.input_shape().len() as f64 * 16.0 / 9.0, // tile overlap re-reads
                read: self.input,
                write: self.v_buf,
                flops_per_item: 32, // 4 row + 4 col transforms x 4 adds
                footprint: self.footprint,
            }),
            Box::new(WinogradTransformKernel {
                name: "winograd-filter-transform".into(),
                items: s.co * s.ci,
                read_bytes: 4.0 * s.filter_shape().len() as f64,
                read: self.input,
                write: self.u_buf,
                flops_per_item: 28,
                footprint: self.footprint,
            }),
            Box::new(WinogradPointwiseKernel {
                shape: *s,
                tiles: self.tiles,
                v_buf: self.v_buf,
                u_buf: self.u_buf,
                m_buf: self.m_buf,
                footprint: self.footprint,
            }),
            Box::new(WinogradTransformKernel {
                name: "winograd-output-transform".into(),
                items: s.n * s.co * self.tiles,
                read_bytes: 4.0 * (s.n * s.co * self.tiles * T * T) as f64,
                read: self.m_buf,
                write: self.output,
                flops_per_item: 24,
                footprint: self.footprint,
            }),
        ]
    }

    /// Simulate the pipeline.
    pub fn simulate(
        &self,
        device: &DeviceConfig,
        opts: &SimOptions,
    ) -> Result<SequenceReport, SimError> {
        let kernels = self.kernels();
        let refs: Vec<&dyn KernelSpec> = kernels.iter().map(|k| k.as_ref() as _).collect();
        simulate_sequence(device, &refs, opts)
    }
}

/// Streaming tile-transform kernel: one item = one 4x4 tile (or filter).
#[derive(Debug)]
struct WinogradTransformKernel {
    name: String,
    items: usize,
    read_bytes: f64,
    read: DeviceBuffer,
    write: DeviceBuffer,
    flops_per_item: u64,
    footprint: u64,
}

impl KernelSpec for WinogradTransformKernel {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: (self.items.div_ceil(256)).max(1) as u64,
            threads_per_block: 256,
            regs_per_thread: 40,
            smem_per_block: 0,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let write_bytes = (self.items * T * T * 4) as f64;
        WorkSummary::new(self.read_bytes, write_bytes, self.footprint).with_ilp(4.0)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        // One thread per tile: reads a 4x4 neighbourhood (two coalesced-ish
        // row segments per row, approximated as 16/9 over-read already in
        // the work floor), writes 16 values scattered across the 16 point
        // planes (coalesced within a plane).
        let mut addrs = Vec::with_capacity(32);
        let base_item = block * 256;
        for w in 0..8u64 {
            let i0 = base_item + w * 32;
            if i0 >= self.items as u64 {
                break;
            }
            let lanes = 32.min(self.items as u64 - i0) as usize;
            // Reads: 4 row segments per item; lanes touch consecutive tiles
            // (stride 2 floats within a feature-map row).
            for seg in 0..4u64 {
                addrs.clear();
                for lane in 0..lanes as u64 {
                    let e = ((i0 + lane) * 8 + seg * 2) % (self.read.bytes / 4);
                    addrs.push(self.read.f32(e));
                }
                t.global_load(&addrs, 8);
            }
            // Writes: 16 planes, coalesced per plane.
            for plane in 0..(T * T) as u64 {
                addrs.clear();
                for lane in 0..lanes as u64 {
                    addrs.push(
                        self.write
                            .f32((plane * self.items as u64 + i0 + lane) % (self.write.bytes / 4)),
                    );
                }
                t.global_store(&addrs, 4);
            }
            t.flops(self.flops_per_item * lanes as u64);
            t.aux(8);
        }
    }
}

/// The 16 batched GEMMs `M_p[N*tiles x Co] = V_p[N*tiles x Ci] x U_p[Ci x Co]`.
#[derive(Debug)]
struct WinogradPointwiseKernel {
    shape: ConvShape,
    tiles: usize,
    v_buf: DeviceBuffer,
    u_buf: DeviceBuffer,
    m_buf: DeviceBuffer,
    footprint: u64,
}

impl KernelSpec for WinogradPointwiseKernel {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        format!("winograd-pointwise x{}", T * T)
    }

    fn launch(&self) -> LaunchConfig {
        let s = &self.shape;
        let rows = s.n * self.tiles;
        let blocks_per_point = rows.div_ceil(64).max(1) * s.co.div_ceil(64).max(1);
        LaunchConfig {
            grid_blocks: (T * T * blocks_per_point) as u64,
            threads_per_block: 256,
            regs_per_thread: 48,
            smem_per_block: 2 * 64 * 16 * 4,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let s = &self.shape;
        let rows = (s.n * self.tiles) as f64;
        let points = (T * T) as f64;
        let reads = points * 4.0 * (rows * s.ci as f64 + (s.ci * s.co) as f64);
        let writes = points * 4.0 * rows * s.co as f64;
        // Same sustained-fraction story as the conv GEMM.
        let cap = 0.30 * s.ci as f64 / (s.ci as f64 + 20.0);
        WorkSummary::new(reads, writes, self.footprint).with_ilp(8.0).with_alu_cap(cap)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let s = &self.shape;
        let rows = s.n * self.tiles;
        let row_tiles = rows.div_ceil(64).max(1);
        let co_tiles = s.co.div_ceil(64).max(1);
        let per_point = (row_tiles * co_tiles) as u64;
        let point = block / per_point;
        let within = block % per_point;
        let r0 = (within as usize / co_tiles) * 64;
        let c0 = (within as usize % co_tiles) * 64;
        let r_here = 64.min(rows - r0);
        let c_here = 64.min(s.co - c0);
        let mut addrs = Vec::with_capacity(32);
        let steps = s.ci.div_ceil(16);
        for step in 0..steps {
            let k0 = step * 16;
            let k_here = 16.min(s.ci - k0);
            // V tile: [point][ci][rows] layout — coalesced along rows.
            for kk in 0..k_here {
                addrs.clear();
                for lane in 0..32.min(r_here) {
                    let e = (point * (s.ci * rows) as u64) + ((k0 + kk) * rows + r0 + lane) as u64;
                    addrs.push(self.v_buf.f32(e % (self.v_buf.bytes / 4)));
                }
                t.global_load(&addrs, 4);
            }
            // U tile: [point][ci][co] — coalesced along co.
            for kk in 0..k_here {
                addrs.clear();
                for lane in 0..32.min(c_here) {
                    let e = (point * (s.ci * s.co) as u64) + ((k0 + kk) * s.co + c0 + lane) as u64;
                    addrs.push(self.u_buf.f32(e % (self.u_buf.bytes / 4)));
                }
                t.global_load(&addrs, 4);
            }
            let clean: Vec<u64> = (0..32u64).map(|l| l * 4).collect();
            t.shared_repeat(&clean, 4, (k_here * 8) as u64);
            t.flops(2 * (r_here * c_here * k_here) as u64);
            t.aux(8);
            t.sync();
        }
        // Store M tile.
        for r in 0..r_here.min(64) {
            addrs.clear();
            for lane in 0..32.min(c_here) {
                let e = (point * (rows * s.co) as u64) + ((r0 + r) * s.co + c0 + lane) as u64;
                addrs.push(self.m_buf.f32(e % (self.m_buf.bytes / 4)));
            }
            t.global_store(&addrs, 4);
        }
    }
}

/// Convenience: a GEMM with the same FLOP volume as this Winograd pipeline's
/// multiply stage, for quick intensity comparisons in tests.
pub fn equivalent_gemm(shape: &ConvShape, tiles: usize) -> GemmKernel {
    GemmKernel::with_fresh_buffers(
        shape.co,
        shape.ci,
        shape.n * tiles * T * T,
        GemmConfig::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv_reference;
    use crate::conv::mm_nchw::MmConvNchw;

    #[test]
    fn winograd_matches_reference_unpadded() {
        let s = ConvShape::table1(2, 4, 10, 3, 3, 1);
        let input = Tensor::random(s.input_shape(), Layout::NCHW, 60);
        let filter = Tensor::random(s.filter_shape(), Layout::NCHW, 61);
        let got = winograd_conv_forward(&input, &filter, &s, Layout::NCHW).unwrap();
        let want = conv_reference(&input, &filter, &s, Layout::NCHW).unwrap();
        assert!(got.approx_eq(&want, 1e-3), "diff {}", got.max_abs_diff(&want).unwrap());
    }

    #[test]
    fn winograd_matches_reference_with_padding_and_odd_sizes() {
        // Odd output extent exercises the partial last tile.
        let s = ConvShape { pad: 1, ..ConvShape::table1(3, 5, 9, 3, 2, 1) };
        let input = Tensor::random(s.input_shape(), Layout::NCHW, 62);
        let filter = Tensor::random(s.filter_shape(), Layout::NCHW, 63);
        let got = winograd_conv_forward(&input, &filter, &s, Layout::NCHW).unwrap();
        let want = conv_reference(&input, &filter, &s, Layout::NCHW).unwrap();
        assert!(got.approx_eq(&want, 1e-3), "diff {}", got.max_abs_diff(&want).unwrap());
    }

    #[test]
    fn rejects_non_3x3_and_strided() {
        assert!(WinogradConvNchw::new(ConvShape::table1(8, 16, 12, 5, 8, 1)).is_err());
        assert!(WinogradConvNchw::new(ConvShape::table1(8, 16, 12, 3, 8, 2)).is_err());
        let input = Tensor::zeros(ConvShape::table1(1, 1, 8, 5, 1, 1).input_shape(), Layout::NCHW);
        let f5 = Tensor::zeros(ConvShape::table1(1, 1, 8, 5, 1, 1).filter_shape(), Layout::NCHW);
        assert!(winograd_conv_forward(
            &input,
            &f5,
            &ConvShape::table1(1, 1, 8, 5, 1, 1),
            Layout::NCHW
        )
        .is_err());
    }

    #[test]
    fn multiply_reduction_is_2_25() {
        let p = WinogradConvNchw::new(ConvShape::table1(32, 512, 14, 3, 512, 1)).unwrap();
        assert!((p.multiply_reduction() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn winograd_beats_mm_on_deep_3x3_layers() {
        // CV12 (VGG 14x14, C=512): the arithmetic-complexity advantage
        // should show, as Lavin & Gray report for VGG-style layers.
        let d = DeviceConfig::titan_black();
        let s = ConvShape::table1(32, 512, 14, 3, 512, 1); // CV12
        let w = WinogradConvNchw::new(s).unwrap();
        let rw = w.simulate(&d, &SimOptions::default()).unwrap();
        let rm = MmConvNchw::new(s).simulate(&d, &SimOptions::default()).unwrap();
        assert!(
            rw.time() < rm.time(),
            "winograd {:.3} ms vs mm {:.3} ms",
            rw.time() * 1e3,
            rm.time() * 1e3
        );
    }

    #[test]
    fn footprint_is_proportional_to_tensors() {
        // The transformed-domain buffers are a fixed multiple of the data
        // (T^2/M^2 = 4x for the M buffer) — no power-of-two frame blow-up
        // — so even the 224x224 CV9 fits the 6 GB device comfortably.
        let s = ConvShape::table1(32, 64, 224, 3, 3, 1); // CV9
        let w = WinogradConvNchw::new(s).unwrap();
        let raw = 4 * (s.input_shape().len() + s.output_shape().len() + s.filter_shape().len());
        assert!(
            w.footprint_bytes() < 8 * raw as u64,
            "footprint {:.2} GB vs raw {:.2} GB",
            w.footprint_bytes() as f64 / 1e9,
            raw as f64 / 1e9
        );
        let d = DeviceConfig::titan_black();
        assert!(w.simulate(&d, &SimOptions::default()).is_ok());
    }
}
