//! Matrix-multiplication convolution over `NCHW` — the Caffe/cuDNN family.
//!
//! Two-kernel pipeline: im2col expands the input into
//! `col[Ci*Fh*Fw][N*OH*OW]`, then a tiled SGEMM computes
//! `out[Co][N*OH*OW] = filter[Co][Ci*Fh*Fw] x col`. The expansion is pure
//! memory overhead — the §IV.A cost that makes this path lose when `C` is
//! small — while the GEMM is where large-`C` layers earn their high
//! arithmetic efficiency.

use crate::gemm_model::{GemmConfig, GemmKernel};
use crate::im2col::Im2colKernel;
use crate::shapes::ConvShape;
use memcnn_gpusim::{
    simulate_sequence, AddressSpace, DeviceConfig, KernelSpec, SequenceReport, SimError, SimOptions,
};

/// The im2col + GEMM convolution pipeline (kernel specs sharing buffers).
#[derive(Clone, Debug)]
pub struct MmConvNchw {
    shape: ConvShape,
    im2col: Im2colKernel,
    gemm: GemmKernel,
}

impl MmConvNchw {
    /// Build the pipeline for a convolution shape.
    pub fn new(shape: ConvShape) -> MmConvNchw {
        let mut asp = AddressSpace::new();
        let input = asp.alloc_f32(shape.input_shape().len() as u64);
        let col = asp.alloc_f32(Im2colKernel::col_elems(&shape) as u64);
        let filter = asp.alloc_f32(shape.filter_shape().len() as u64);
        let out = asp.alloc_f32(shape.output_shape().len() as u64);
        let k = shape.ci * shape.fh * shape.fw;
        let m = shape.n * shape.out_h() * shape.out_w();
        let im2col = Im2colKernel::new(shape, input, col);
        let gemm = GemmKernel::new(shape.co, k, m, GemmConfig::default(), filter, col, out)
            .with_extra_footprint(input.bytes);
        MmConvNchw { shape, im2col, gemm }
    }

    /// The convolution shape.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The pipeline's kernels in execution order.
    pub fn kernels(&self) -> Vec<&dyn KernelSpec> {
        vec![&self.im2col, &self.gemm]
    }

    /// Device-memory footprint of the whole pipeline (input + col + filter
    /// + output), the quantity that makes the unrolled matrix expensive.
    pub fn footprint_bytes(&self) -> u64 {
        let s = &self.shape;
        4 * (s.input_shape().len()
            + Im2colKernel::col_elems(s)
            + s.filter_shape().len()
            + s.output_shape().len()) as u64
    }

    /// Simulate the pipeline.
    pub fn simulate(
        &self,
        device: &DeviceConfig,
        opts: &SimOptions,
    ) -> Result<SequenceReport, SimError> {
        simulate_sequence(device, &self.kernels(), opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::direct_chwn::DirectConvChwn;
    use memcnn_gpusim::simulate;

    #[test]
    fn pipeline_has_two_kernels_and_conv_flops() {
        let s = ConvShape::table1(64, 384, 13, 3, 256, 1); // CONV7
        let p = MmConvNchw::new(s);
        let d = DeviceConfig::titan_black();
        let r = p.simulate(&d, &SimOptions::default()).unwrap();
        assert_eq!(r.kernels.len(), 2);
        // GEMM flops == conv flops.
        let expect = s.flops() as f64;
        assert!((r.flops() - expect).abs() / expect < 0.02);
    }

    #[test]
    fn small_c_pays_im2col_overhead() {
        // CONV1 (C=1): the im2col step moves more bytes than the GEMM needs,
        // and the K=25 GEMM has poor reuse — direct CHWN conv wins (Fig 3).
        let d = DeviceConfig::titan_black();
        let s = ConvShape::table1(128, 16, 28, 5, 1, 1);
        let mm = MmConvNchw::new(s).simulate(&d, &SimOptions::default()).unwrap();
        let direct = simulate(&d, &DirectConvChwn::new(s), &SimOptions::default()).unwrap();
        assert!(
            mm.time() > 1.5 * direct.time(),
            "mm {:.3} ms vs direct {:.3} ms",
            mm.time() * 1e3,
            direct.time() * 1e3
        );
    }

    #[test]
    fn large_c_small_n_favors_mm() {
        // CONV11-like (N=32, C=256): direct conv loses its register reuse
        // while GEMM runs at high efficiency (Fig 3 right half).
        let d = DeviceConfig::titan_black();
        let s = ConvShape::table1(32, 512, 28, 3, 256, 1);
        let mm = MmConvNchw::new(s).simulate(&d, &SimOptions::default()).unwrap();
        let direct = simulate(&d, &DirectConvChwn::new(s), &SimOptions::default()).unwrap();
        assert!(
            direct.time() > mm.time(),
            "direct {:.3} ms vs mm {:.3} ms",
            direct.time() * 1e3,
            mm.time() * 1e3
        );
    }

    #[test]
    fn footprint_includes_col_matrix() {
        let s = ConvShape::table1(32, 64, 28, 3, 16, 1);
        let p = MmConvNchw::new(s);
        let col_bytes = 4 * Im2colKernel::col_elems(&s) as u64;
        assert!(p.footprint_bytes() > col_bytes);
        // The col matrix dominates: Fh*Fw = 9x the input.
        assert!(col_bytes > 4 * 4 * s.input_shape().len() as u64);
    }
}
