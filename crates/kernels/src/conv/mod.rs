//! Convolutional-layer kernels.
//!
//! Four implementation families:
//!
//! - [`direct_chwn`]: cuda-convnet's direct convolution over the `CHWN`
//!   layout (warp along the batch dimension, register-tiled reuse).
//! - [`mm_nchw`]: Caffe/cuDNN's matrix-multiplication path over `NCHW`
//!   (im2col expansion + tiled GEMM).
//! - [`fft_nchw`]: cuDNN v4's FFT and FFT-tiling modes over `NCHW`
//!   (frequency-domain products; large-footprint, stride-1 only).
//! - [`winograd`]: the §VII outlook — Lavin & Gray's F(2x2, 3x3)
//!   arithmetic-complexity reduction (the paper's ref [16]).
//!
//! Every family has a functional CPU implementation (tested against the
//! naive reference here) and a GPU kernel spec for the simulator.

pub mod direct_chwn;
pub mod fft_nchw;
pub mod mm_nchw;
pub mod winograd;

use crate::im2col::im2col;
use crate::matmul::sgemm;
use crate::shapes::ConvShape;
use memcnn_tensor::{Layout, Tensor};
use rayon::prelude::*;
use std::fmt;

/// Errors from convolution construction/execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConvError {
    /// The implementation does not support this configuration (e.g. the
    /// FFT modes are stride-1 only, as in cuDNN v4).
    Unsupported(String),
    /// Input/filter tensors disagree with the declared shape.
    ShapeMismatch(String),
}

impl fmt::Display for ConvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvError::Unsupported(m) => write!(f, "unsupported convolution: {m}"),
            ConvError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
        }
    }
}

impl std::error::Error for ConvError {}

/// Naive direct convolution over logical coordinates: the correctness
/// oracle for every other implementation. Accepts any input/filter layout;
/// produces `out_layout`. Parallel over `(n, co)`.
pub fn conv_reference(
    input: &Tensor,
    filter: &Tensor,
    shape: &ConvShape,
    out_layout: Layout,
) -> Result<Tensor, ConvError> {
    check_shapes(input, filter, shape)?;
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut out = Tensor::zeros(shape.output_shape(), out_layout);
    // Compute into a (n, co)-indexed set of planes, then write.
    let planes: Vec<((usize, usize), Vec<f32>)> = (0..shape.n * shape.co)
        .into_par_iter()
        .map(|idx| {
            let (n, co) = (idx / shape.co, idx % shape.co);
            let mut plane = vec![0f32; oh * ow];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0f32;
                    for ci in 0..shape.ci {
                        for fy in 0..shape.fh {
                            for fx in 0..shape.fw {
                                let iy = (oy * shape.stride + fy) as isize - shape.pad as isize;
                                let ix = (ox * shape.stride + fx) as isize - shape.pad as isize;
                                if iy >= 0
                                    && ix >= 0
                                    && (iy as usize) < shape.h
                                    && (ix as usize) < shape.w
                                {
                                    acc += input.get(n, ci, iy as usize, ix as usize)
                                        * filter.get(co, ci, fy, fx);
                                }
                            }
                        }
                    }
                    plane[oy * ow + ox] = acc;
                }
            }
            ((n, co), plane)
        })
        .collect();
    for ((n, co), plane) in planes {
        for oy in 0..oh {
            for ox in 0..ow {
                out.set(n, co, oy, ox, plane[oy * ow + ox]);
            }
        }
    }
    Ok(out)
}

/// Fast functional convolution (im2col + parallel SGEMM), used by the
/// execution engine. Layout-agnostic on the outside; internally works in
/// NCHW.
pub fn conv_forward(
    input: &Tensor,
    filter: &Tensor,
    shape: &ConvShape,
    out_layout: Layout,
) -> Result<Tensor, ConvError> {
    check_shapes(input, filter, shape)?;
    let input_nchw = input.to_layout(Layout::NCHW);
    let filter_nchw = filter.to_layout(Layout::NCHW);
    let col = im2col(&input_nchw, shape);
    let k = shape.ci * shape.fh * shape.fw;
    let m = shape.n * shape.out_h() * shape.out_w();
    let out_mat = sgemm(shape.co, k, m, filter_nchw.as_slice(), &col);
    // out_mat is [Co][N x OH x OW]; scatter into the requested layout.
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut out = Tensor::zeros(shape.output_shape(), out_layout);
    for co in 0..shape.co {
        for n in 0..shape.n {
            for oy in 0..oh {
                for ox in 0..ow {
                    out.set(n, co, oy, ox, out_mat[co * m + (n * oh + oy) * ow + ox]);
                }
            }
        }
    }
    Ok(out)
}

/// Backward pass w.r.t. the input (full correlation with rotated filters),
/// provided functionally to back the paper's §II footnote that forward and
/// backward share data structures and access patterns.
pub fn conv_backward_input(
    grad_out: &Tensor,
    filter: &Tensor,
    shape: &ConvShape,
    out_layout: Layout,
) -> Result<Tensor, ConvError> {
    if grad_out.shape() != shape.output_shape() {
        return Err(ConvError::ShapeMismatch(format!(
            "grad_out {} vs expected {}",
            grad_out.shape(),
            shape.output_shape()
        )));
    }
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut grad_in = Tensor::zeros(shape.input_shape(), out_layout);
    for n in 0..shape.n {
        for ci in 0..shape.ci {
            for iy in 0..shape.h {
                for ix in 0..shape.w {
                    let mut acc = 0f32;
                    for co in 0..shape.co {
                        for fy in 0..shape.fh {
                            for fx in 0..shape.fw {
                                let oy_num = iy + shape.pad;
                                let ox_num = ix + shape.pad;
                                if oy_num >= fy && ox_num >= fx {
                                    let (dy, dx) = (oy_num - fy, ox_num - fx);
                                    if dy % shape.stride == 0 && dx % shape.stride == 0 {
                                        let (oy, ox) = (dy / shape.stride, dx / shape.stride);
                                        if oy < oh && ox < ow {
                                            acc += grad_out.get(n, co, oy, ox)
                                                * filter.get(co, ci, fy, fx);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    grad_in.set(n, ci, iy, ix, acc);
                }
            }
        }
    }
    Ok(grad_in)
}

/// Backward pass w.r.t. the filter: correlate the input with the output
/// gradient (the weight-gradient step of training; same 4D data structures
/// and access patterns as the forward pass, per the paper's §II footnote).
pub fn conv_backward_filter(
    input: &Tensor,
    grad_out: &Tensor,
    shape: &ConvShape,
) -> Result<Tensor, ConvError> {
    if input.shape() != shape.input_shape() {
        return Err(ConvError::ShapeMismatch(format!(
            "input {} vs expected {}",
            input.shape(),
            shape.input_shape()
        )));
    }
    if grad_out.shape() != shape.output_shape() {
        return Err(ConvError::ShapeMismatch(format!(
            "grad_out {} vs expected {}",
            grad_out.shape(),
            shape.output_shape()
        )));
    }
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut grad_w = Tensor::zeros(shape.filter_shape(), Layout::NCHW);
    let planes: Vec<((usize, usize), Vec<f32>)> = (0..shape.co * shape.ci)
        .into_par_iter()
        .map(|idx| {
            let (co, ci) = (idx / shape.ci, idx % shape.ci);
            let mut tap = vec![0f32; shape.fh * shape.fw];
            for fy in 0..shape.fh {
                for fx in 0..shape.fw {
                    let mut acc = 0f32;
                    for n in 0..shape.n {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let iy = (oy * shape.stride + fy) as isize - shape.pad as isize;
                                let ix = (ox * shape.stride + fx) as isize - shape.pad as isize;
                                if iy >= 0
                                    && ix >= 0
                                    && (iy as usize) < shape.h
                                    && (ix as usize) < shape.w
                                {
                                    acc += input.get(n, ci, iy as usize, ix as usize)
                                        * grad_out.get(n, co, oy, ox);
                                }
                            }
                        }
                    }
                    tap[fy * shape.fw + fx] = acc;
                }
            }
            ((co, ci), tap)
        })
        .collect();
    for ((co, ci), tap) in planes {
        for fy in 0..shape.fh {
            for fx in 0..shape.fw {
                grad_w.set(co, ci, fy, fx, tap[fy * shape.fw + fx]);
            }
        }
    }
    Ok(grad_w)
}

fn check_shapes(input: &Tensor, filter: &Tensor, shape: &ConvShape) -> Result<(), ConvError> {
    shape.validate().map_err(ConvError::Unsupported)?;
    if input.shape() != shape.input_shape() {
        return Err(ConvError::ShapeMismatch(format!(
            "input {} vs expected {}",
            input.shape(),
            shape.input_shape()
        )));
    }
    if filter.shape() != shape.filter_shape() {
        return Err(ConvError::ShapeMismatch(format!(
            "filter {} vs expected {}",
            filter.shape(),
            shape.filter_shape()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_reference_all_layout_combinations() {
        let s = ConvShape::table1(3, 4, 9, 3, 2, 1);
        for in_layout in [Layout::NCHW, Layout::CHWN] {
            for out_layout in [Layout::NCHW, Layout::CHWN, Layout::NHWC] {
                let input = Tensor::random(s.input_shape(), in_layout, 5);
                let filter = Tensor::random(s.filter_shape(), Layout::NCHW, 6);
                let fast = conv_forward(&input, &filter, &s, out_layout).unwrap();
                let slow = conv_reference(&input, &filter, &s, out_layout).unwrap();
                assert!(
                    fast.approx_eq(&slow, 1e-3),
                    "layouts {in_layout} -> {out_layout}, diff {}",
                    fast.max_abs_diff(&slow).unwrap()
                );
            }
        }
    }

    #[test]
    fn forward_with_stride_and_padding() {
        let s = ConvShape { pad: 2, ..ConvShape::table1(2, 3, 11, 5, 2, 2) };
        let input = Tensor::random(s.input_shape(), Layout::NCHW, 7);
        let filter = Tensor::random(s.filter_shape(), Layout::NCHW, 8);
        let fast = conv_forward(&input, &filter, &s, Layout::NCHW).unwrap();
        let slow = conv_reference(&input, &filter, &s, Layout::NCHW).unwrap();
        assert!(fast.approx_eq(&slow, 1e-3));
    }

    #[test]
    fn single_pixel_identity() {
        // 1x1 filter with weight 2.0: output = 2 x input.
        let s = ConvShape::table1(1, 1, 4, 1, 1, 1);
        let input = Tensor::random(s.input_shape(), Layout::NCHW, 9);
        let filter = Tensor::full(s.filter_shape(), Layout::NCHW, 2.0);
        let out = conv_forward(&input, &filter, &s, Layout::NCHW).unwrap();
        for ((n, c, h, w), v) in input.iter_logical() {
            assert!((out.get(n, c, h, w) - 2.0 * v).abs() < 1e-5);
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let s = ConvShape::table1(2, 3, 8, 3, 2, 1);
        let bad_input = Tensor::zeros(memcnn_tensor::Shape::new(2, 5, 8, 8), Layout::NCHW);
        let filter = Tensor::zeros(s.filter_shape(), Layout::NCHW);
        assert!(matches!(
            conv_forward(&bad_input, &filter, &s, Layout::NCHW),
            Err(ConvError::ShapeMismatch(_))
        ));
        let input = Tensor::zeros(s.input_shape(), Layout::NCHW);
        let bad_filter = Tensor::zeros(memcnn_tensor::Shape::new(3, 2, 5, 5), Layout::NCHW);
        assert!(matches!(
            conv_forward(&input, &bad_filter, &s, Layout::NCHW),
            Err(ConvError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn backward_input_matches_autograd_identity() {
        // For a 1x1 stride-1 conv, grad_in = grad_out convolved with the
        // transposed channel matrix; check a scalar case by hand.
        let s = ConvShape::table1(1, 1, 3, 1, 1, 1);
        let filter = Tensor::full(s.filter_shape(), Layout::NCHW, 3.0);
        let grad_out = Tensor::full(s.output_shape(), Layout::NCHW, 1.0);
        let grad_in = conv_backward_input(&grad_out, &filter, &s, Layout::NCHW).unwrap();
        for (_, v) in grad_in.iter_logical() {
            assert!((v - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_filter_matches_finite_difference() {
        // d(sum(out))/d(w[co][ci][fy][fx]) == conv_backward_filter with
        // all-ones grad_out; check against a finite difference.
        let s = ConvShape::table1(2, 2, 5, 3, 2, 1);
        let input = Tensor::random(s.input_shape(), Layout::NCHW, 40);
        let filter = Tensor::random(s.filter_shape(), Layout::NCHW, 41);
        let ones = Tensor::full(s.output_shape(), Layout::NCHW, 1.0);
        let grad = conv_backward_filter(&input, &ones, &s).unwrap();
        let total = |f: &Tensor| -> f32 {
            conv_reference(&input, f, &s, Layout::NCHW)
                .unwrap()
                .iter_logical()
                .map(|(_, v)| v)
                .sum()
        };
        let eps = 1e-2;
        for (co, ci, fy, fx) in [(0, 0, 0, 0), (1, 1, 2, 1), (1, 0, 1, 2)] {
            let mut bumped = filter.clone();
            bumped.set(co, ci, fy, fx, filter.get(co, ci, fy, fx) + eps);
            let fd = (total(&bumped) - total(&filter)) / eps;
            let an = grad.get(co, ci, fy, fx);
            assert!((fd - an).abs() < 0.05 * (1.0 + an.abs()), "fd {fd} vs analytic {an}");
        }
    }

    #[test]
    fn backward_filter_validates_shapes() {
        let s = ConvShape::table1(2, 2, 5, 3, 2, 1);
        let input = Tensor::zeros(s.input_shape(), Layout::NCHW);
        let bad = Tensor::zeros(memcnn_tensor::Shape::new(2, 2, 9, 9), Layout::NCHW);
        assert!(matches!(conv_backward_filter(&input, &bad, &s), Err(ConvError::ShapeMismatch(_))));
    }

    #[test]
    fn backward_input_counts_contributing_taps() {
        // 3x3 stride-1, single channel, all-ones: interior input pixels
        // receive 9 contributions, corners 1.
        let s = ConvShape::table1(1, 1, 5, 3, 1, 1);
        let filter = Tensor::full(s.filter_shape(), Layout::NCHW, 1.0);
        let grad_out = Tensor::full(s.output_shape(), Layout::NCHW, 1.0);
        let g = conv_backward_input(&grad_out, &filter, &s, Layout::NCHW).unwrap();
        assert_eq!(g.get(0, 0, 2, 2), 9.0);
        assert_eq!(g.get(0, 0, 0, 0), 1.0);
        assert_eq!(g.get(0, 0, 0, 2), 3.0);
    }
}
