//! Softmax (classifier) layer kernels — the §V.B case study.
//!
//! The layer is five element-wise/reduction steps over a `batch x
//! categories` matrix (§II.A). Four implementations, spanning the paper's
//! baseline-to-optimized progression and the Fig 13 ablation:
//!
//! 1. [`five_kernel_pipeline`] — cuda-convnet/Caffe: one kernel per step,
//!    one *thread per image* (the outer loop), serial inner loop.
//!    Intermediates round-trip through global memory; accesses along the
//!    batch lane are strided by `C`; 128 threads cannot hide latency.
//! 2. [`cudnn_pipeline`] — a stronger multi-kernel baseline (block per
//!    image, parallel inner reductions) that is usually `BL_Best` in
//!    Fig 13's sense.
//! 3. [`SoftmaxFusedSerial`] — all five steps fused into one kernel but
//!    inner loops still serial: isolates the benefit of fusion (the
//!    paper: fusion alone contributes 2.81x GM).
//! 4. [`SoftmaxFused`] — the paper's Fig 9 kernel: fused, input cached in
//!    shared memory (`in_tile`, requires `C < 11K`), inner loops
//!    parallelized with block-wide reductions ("inject threads"), one
//!    coalesced read and write of the matrix.

use crate::shapes::SoftmaxShape;
use memcnn_gpusim::{
    AddressSpace, BankMode, BlockTrace, DeviceBuffer, KernelSpec, LaunchConfig, WorkSummary,
};

/// The paper's shared-memory capacity bound on cached categories
/// (Fig 9: `__shared__ float in_tile[C]; // C < 11K`).
pub const FUSED_SMEM_CATEGORY_LIMIT: usize = 11 * 1024;

/// Functional softmax with the max-shift for numerical stability; input and
/// output are row-major `batch x categories`.
pub fn softmax_forward(input: &[f32], shape: SoftmaxShape) -> Vec<f32> {
    assert_eq!(input.len(), shape.len(), "input must be batch x categories");
    let c = shape.categories;
    let mut out = vec![0f32; input.len()];
    for (row_in, row_out) in input.chunks(c).zip(out.chunks_mut(c)) {
        let max = row_in.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0f32;
        for (o, &x) in row_out.iter_mut().zip(row_in) {
            *o = (x - max).exp();
            sum += *o;
        }
        for o in row_out.iter_mut() {
            *o /= sum;
        }
    }
    out
}

/// Gradient of softmax followed by cross-entropy with one-hot `labels`
/// (the standard classifier backward): `grad = softmax(x) - onehot`.
pub fn softmax_xent_backward(input: &[f32], labels: &[usize], shape: SoftmaxShape) -> Vec<f32> {
    assert_eq!(labels.len(), shape.batch, "one label per image");
    let mut grad = softmax_forward(input, shape);
    for (n, &lab) in labels.iter().enumerate() {
        assert!(lab < shape.categories, "label out of range");
        grad[n * shape.categories + lab] -= 1.0;
    }
    grad
}

/// Device buffers shared by the multi-kernel pipelines.
#[derive(Clone, Copy, Debug)]
struct SoftmaxBuffers {
    input: DeviceBuffer,
    mid1: DeviceBuffer,
    mid2: DeviceBuffer,
    maxv: DeviceBuffer,
    sumv: DeviceBuffer,
    output: DeviceBuffer,
    footprint: u64,
}

impl SoftmaxBuffers {
    fn new(shape: SoftmaxShape) -> SoftmaxBuffers {
        let mut asp = AddressSpace::new();
        let input = asp.alloc_f32(shape.len() as u64);
        let mid1 = asp.alloc_f32(shape.len() as u64);
        let mid2 = asp.alloc_f32(shape.len() as u64);
        let maxv = asp.alloc_f32(shape.batch as u64);
        let sumv = asp.alloc_f32(shape.batch as u64);
        let output = asp.alloc_f32(shape.len() as u64);
        let footprint = asp.footprint();
        SoftmaxBuffers { input, mid1, mid2, maxv, sumv, output, footprint }
    }
}

/// Which of the five §II.A steps a baseline kernel performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Step {
    /// Step 1: per-image max.
    Max,
    /// Step 2: subtract the max.
    Sub,
    /// Step 3: exponentiate.
    Exp,
    /// Step 4: per-image sum.
    Sum,
    /// Step 5: normalize.
    Div,
}

/// One step of the cuda-convnet/Caffe softmax: thread per image, serial
/// inner loop over categories, lane addresses strided by `C`.
#[derive(Debug)]
struct StepKernel {
    shape: SoftmaxShape,
    step: Step,
    buf: SoftmaxBuffers,
}

impl StepKernel {
    /// (reads-per-category, per-image reads, writes-per-category,
    /// per-image writes, flops-per-element).
    fn traffic(
        &self,
    ) -> (Vec<DeviceBuffer>, Vec<DeviceBuffer>, Vec<DeviceBuffer>, Vec<DeviceBuffer>, u64) {
        let b = &self.buf;
        match self.step {
            Step::Max => (vec![b.input], vec![], vec![], vec![b.maxv], 1),
            Step::Sub => (vec![b.input], vec![b.maxv], vec![b.mid1], vec![], 1),
            Step::Exp => (vec![b.mid1], vec![], vec![b.mid2], vec![], 10),
            Step::Sum => (vec![b.mid2], vec![], vec![], vec![b.sumv], 1),
            Step::Div => (vec![b.mid2], vec![b.sumv], vec![b.output], vec![], 4),
        }
    }
}

impl KernelSpec for StepKernel {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        format!("softmax-step-{:?} {}", self.step, self.shape)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: self.shape.batch.div_ceil(128) as u64,
            threads_per_block: 128,
            regs_per_thread: 20,
            smem_per_block: 0,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let (rc, ri, wc, wi, _) = self.traffic();
        let per_cat = self.shape.len() as f64 * 4.0;
        let per_img = self.shape.batch as f64 * 4.0;
        WorkSummary::new(
            rc.len() as f64 * per_cat + ri.len() as f64 * per_img,
            wc.len() as f64 * per_cat + wi.len() as f64 * per_img,
            self.buf.footprint,
        )
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let c = self.shape.categories;
        let (rc, ri, wc, wi, flops_per_elem) = self.traffic();
        let mut addrs = Vec::with_capacity(32);
        for w in 0..4u64 {
            let n0 = (block * 128 + w * 32) as usize;
            if n0 >= self.shape.batch {
                break;
            }
            let lanes = 32.min(self.shape.batch - n0);
            // Per-image values (max/sum) load/store once per thread,
            // coalesced along the batch.
            for b in &ri {
                addrs.clear();
                for lane in 0..lanes {
                    addrs.push(b.f32((n0 + lane) as u64));
                }
                t.global_load(&addrs, 4);
            }
            // The serial category loop: each iteration the warp touches 32
            // rows at the same column — stride C, un-coalesced.
            for cat in 0..c {
                for b in &rc {
                    addrs.clear();
                    for lane in 0..lanes {
                        addrs.push(b.f32(((n0 + lane) * c + cat) as u64));
                    }
                    t.global_load(&addrs, 4);
                }
                for b in &wc {
                    addrs.clear();
                    for lane in 0..lanes {
                        addrs.push(b.f32(((n0 + lane) * c + cat) as u64));
                    }
                    t.global_store(&addrs, 4);
                }
                t.flops(flops_per_elem * lanes as u64);
            }
            t.aux(c as u64);
            for b in &wi {
                addrs.clear();
                for lane in 0..lanes {
                    addrs.push(b.f32((n0 + lane) as u64));
                }
                t.global_store(&addrs, 4);
            }
        }
    }
}

/// The cuda-convnet/Caffe baseline: five dependent kernels.
pub fn five_kernel_pipeline(shape: SoftmaxShape) -> Vec<Box<dyn KernelSpec + Send>> {
    let buf = SoftmaxBuffers::new(shape);
    [Step::Max, Step::Sub, Step::Exp, Step::Sum, Step::Div]
        .into_iter()
        .map(|step| Box::new(StepKernel { shape, step, buf }) as Box<dyn KernelSpec + Send>)
        .collect()
}

/// A block-per-image kernel with parallel inner loop, used by the stronger
/// `cudnn_pipeline` baseline: performs `passes_read` coalesced reads and
/// `passes_write` coalesced writes of the matrix plus a block reduction.
#[derive(Debug)]
struct BlockPerImageKernel {
    shape: SoftmaxShape,
    name: &'static str,
    reads: Vec<DeviceBuffer>,
    writes: Vec<DeviceBuffer>,
    reduce: bool,
    flops_per_elem: u64,
    footprint: u64,
}

fn block_threads(categories: usize) -> u32 {
    (categories.next_multiple_of(32)).clamp(32, 1024) as u32
}

impl KernelSpec for BlockPerImageKernel {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        format!("softmax-{} {}", self.name, self.shape)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: self.shape.batch as u64,
            threads_per_block: block_threads(self.shape.categories),
            regs_per_thread: 24,
            smem_per_block: if self.reduce { 1024 * 4 } else { 0 },
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let bytes = self.shape.len() as f64 * 4.0;
        WorkSummary::new(
            self.reads.len() as f64 * bytes,
            self.writes.len() as f64 * bytes,
            self.footprint,
        )
        .with_ilp(2.0)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let c = self.shape.categories;
        let threads = block_threads(c) as usize;
        let warps = threads / 32;
        let row = block as usize * c;
        let mut addrs = Vec::with_capacity(32);
        // Grid-stride over categories: coalesced along the row.
        for chunk in (0..c).step_by(threads) {
            for w in 0..warps {
                let c0 = chunk + w * 32;
                if c0 >= c {
                    break;
                }
                let lanes = 32.min(c - c0);
                for b in &self.reads {
                    addrs.clear();
                    for lane in 0..lanes {
                        addrs.push(b.f32((row + c0 + lane) as u64));
                    }
                    t.global_load(&addrs, 4);
                }
                for b in &self.writes {
                    addrs.clear();
                    for lane in 0..lanes {
                        addrs.push(b.f32((row + c0 + lane) as u64));
                    }
                    t.global_store(&addrs, 4);
                }
                t.flops(self.flops_per_elem * lanes as u64);
            }
        }
        if self.reduce {
            // Tree reduction in shared memory: log2(threads) rounds.
            let clean: Vec<u64> = (0..32u64).map(|l| l * 4).collect();
            let rounds = (threads.max(2)).ilog2() as u64;
            t.shared_repeat(&clean, 4, rounds * warps as u64 * 2);
            for _ in 0..rounds {
                t.sync();
            }
            t.flops(threads as u64);
        }
        t.aux((c / threads.max(1)) as u64 + 4);
    }
}

/// A stronger multi-kernel baseline in the cuDNN style: block per image,
/// parallel reductions, but still four dependent kernels streaming
/// intermediates through global memory.
pub fn cudnn_pipeline(shape: SoftmaxShape) -> Vec<Box<dyn KernelSpec + Send>> {
    let buf = SoftmaxBuffers::new(shape);
    vec![
        Box::new(BlockPerImageKernel {
            shape,
            name: "cudnn-max",
            reads: vec![buf.input],
            writes: vec![],
            reduce: true,
            flops_per_elem: 1,
            footprint: buf.footprint,
        }) as Box<dyn KernelSpec + Send>,
        Box::new(BlockPerImageKernel {
            shape,
            name: "cudnn-sub-exp",
            reads: vec![buf.input],
            writes: vec![buf.mid2],
            reduce: false,
            flops_per_elem: 11,
            footprint: buf.footprint,
        }),
        Box::new(BlockPerImageKernel {
            shape,
            name: "cudnn-sum",
            reads: vec![buf.mid2],
            writes: vec![],
            reduce: true,
            flops_per_elem: 1,
            footprint: buf.footprint,
        }),
        Box::new(BlockPerImageKernel {
            shape,
            name: "cudnn-div",
            reads: vec![buf.mid2],
            writes: vec![buf.output],
            reduce: false,
            flops_per_elem: 4,
            footprint: buf.footprint,
        }),
    ]
}

/// Fusion-only ablation: one kernel, one launch, but the §II.A inner loops
/// stay serial (thread per image). Intermediates live in registers where
/// they fit; the input is re-read from global memory on each of the three
/// category sweeps (max, exp+sum, normalize).
#[derive(Clone, Debug)]
pub struct SoftmaxFusedSerial {
    shape: SoftmaxShape,
    input: DeviceBuffer,
    output: DeviceBuffer,
    footprint: u64,
}

impl SoftmaxFusedSerial {
    /// Build with fresh buffers.
    pub fn new(shape: SoftmaxShape) -> SoftmaxFusedSerial {
        let mut asp = AddressSpace::new();
        let input = asp.alloc_f32(shape.len() as u64);
        let output = asp.alloc_f32(shape.len() as u64);
        SoftmaxFusedSerial { shape, input, output, footprint: asp.footprint() }
    }
}

impl KernelSpec for SoftmaxFusedSerial {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        format!("softmax-fused-serial {}", self.shape)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: self.shape.batch.div_ceil(128) as u64,
            threads_per_block: 128,
            regs_per_thread: 32,
            smem_per_block: 0,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let bytes = self.shape.len() as f64 * 4.0;
        WorkSummary::new(3.0 * bytes, bytes, self.footprint)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let c = self.shape.categories;
        let mut addrs = Vec::with_capacity(32);
        for w in 0..4u64 {
            let n0 = (block * 128 + w * 32) as usize;
            if n0 >= self.shape.batch {
                break;
            }
            let lanes = 32.min(self.shape.batch - n0);
            // Three serial sweeps reading the input (strided by C), the
            // last one writing the output.
            for sweep in 0..3 {
                for cat in 0..c {
                    addrs.clear();
                    for lane in 0..lanes {
                        addrs.push(self.input.f32(((n0 + lane) * c + cat) as u64));
                    }
                    t.global_load(&addrs, 4);
                    if sweep == 2 {
                        addrs.clear();
                        for lane in 0..lanes {
                            addrs.push(self.output.f32(((n0 + lane) * c + cat) as u64));
                        }
                        t.global_store(&addrs, 4);
                    }
                    t.flops(if sweep == 1 { 11 } else { 2 } * lanes as u64);
                }
            }
            t.aux(3 * c as u64);
        }
    }
}

/// The paper's optimized kernel (Fig 9): all five steps fused, input cached
/// in shared memory when `C < 11K`, inner loops parallelized across the
/// block with shared-memory tree reductions.
#[derive(Clone, Debug)]
pub struct SoftmaxFused {
    shape: SoftmaxShape,
    input: DeviceBuffer,
    output: DeviceBuffer,
    footprint: u64,
}

impl SoftmaxFused {
    /// Build with fresh buffers.
    pub fn new(shape: SoftmaxShape) -> SoftmaxFused {
        let mut asp = AddressSpace::new();
        let input = asp.alloc_f32(shape.len() as u64);
        let output = asp.alloc_f32(shape.len() as u64);
        SoftmaxFused { shape, input, output, footprint: asp.footprint() }
    }

    /// Whether the input row fits the shared-memory cache (`in_tile`).
    pub fn caches_input(&self) -> bool {
        self.shape.categories < FUSED_SMEM_CATEGORY_LIMIT
    }
}

impl KernelSpec for SoftmaxFused {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        format!("softmax-fused {}", self.shape)
    }

    fn launch(&self) -> LaunchConfig {
        let threads = block_threads(self.shape.categories);
        let in_tile = if self.caches_input() { self.shape.categories * 4 } else { 0 };
        LaunchConfig {
            grid_blocks: self.shape.batch as u64,
            threads_per_block: threads,
            regs_per_thread: 28,
            smem_per_block: (in_tile + 1024 * 4) as u32,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let bytes = self.shape.len() as f64 * 4.0;
        let reads = if self.caches_input() { bytes } else { 3.0 * bytes };
        WorkSummary::new(reads, bytes, self.footprint).with_ilp(2.0)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let c = self.shape.categories;
        let threads = block_threads(c) as usize;
        let warps = threads / 32;
        let row = block as usize * c;
        let clean: Vec<u64> = (0..32u64).map(|l| l * 4).collect();
        let mut addrs = Vec::with_capacity(32);
        // Vectorized global accesses (float4/float2) where the row length
        // allows — optimized streaming kernels always do this, and the
        // wider bursts are what push the achieved bandwidth to the paper's
        // ~94% of effective.
        let vec_w = if c.is_multiple_of(4) {
            4
        } else if c.is_multiple_of(2) {
            2
        } else {
            1
        };
        let span = 32 * vec_w; // floats covered per warp access
        let sweeps: &[usize] = if self.caches_input() { &[0] } else { &[0, 1, 2] };
        for &sweep in sweeps {
            for chunk in (0..c).step_by(threads * vec_w) {
                for w in 0..warps {
                    let c0 = chunk + w * span;
                    if c0 >= c {
                        break;
                    }
                    let lanes = (c - c0).div_ceil(vec_w).min(32);
                    addrs.clear();
                    for lane in 0..lanes {
                        addrs.push(self.input.f32((row + c0 + lane * vec_w) as u64));
                    }
                    t.global_load(&addrs, 4 * vec_w as u64);
                    if sweep == 0 && self.caches_input() {
                        t.shared(&clean[..lanes], 4 * vec_w as u64); // fill in_tile
                    }
                }
            }
        }
        // Steps 1-4 operate on the cached tile: per category element, a
        // handful of shared reads/writes plus two tree reductions.
        let elems_per_warp = c.div_ceil(warps.max(1)) as u64;
        t.shared_repeat(&clean, 4, elems_per_warp.div_ceil(32) * warps as u64 * 6);
        let rounds = (threads.max(2)).ilog2() as u64;
        t.shared_repeat(&clean, 4, 2 * rounds * warps as u64 * 2);
        for _ in 0..2 * rounds {
            t.sync();
        }
        t.flops(16 * c as u64 + 2 * threads as u64);
        t.aux((c / threads.max(1)) as u64 * 4 + 8);
        // Final normalized write, coalesced and vectorized.
        for chunk in (0..c).step_by(threads * vec_w) {
            for w in 0..warps {
                let c0 = chunk + w * span;
                if c0 >= c {
                    break;
                }
                let lanes = (c - c0).div_ceil(vec_w).min(32);
                addrs.clear();
                for lane in 0..lanes {
                    addrs.push(self.output.f32((row + c0 + lane * vec_w) as u64));
                }
                t.global_store(&addrs, 4 * vec_w as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_gpusim::{simulate, simulate_sequence, DeviceConfig, SimOptions};

    fn boxed_refs(v: &[Box<dyn KernelSpec + Send>]) -> Vec<&dyn KernelSpec> {
        v.iter().map(|k| k.as_ref() as _).collect()
    }

    #[test]
    fn functional_rows_sum_to_one() {
        let shape = SoftmaxShape::new(4, 7);
        let input: Vec<f32> = (0..28).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let out = softmax_forward(&input, shape);
        for row in out.chunks(7) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn functional_is_translation_invariant_and_stable() {
        let shape = SoftmaxShape::new(1, 5);
        let a = softmax_forward(&[1.0, 2.0, 3.0, 4.0, 5.0], shape);
        let b = softmax_forward(&[101.0, 102.0, 103.0, 104.0, 105.0], shape);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
        // Large magnitudes must not overflow to NaN (the max-shift at work).
        let big = softmax_forward(&[1000.0, 999.0], SoftmaxShape::new(1, 2));
        assert!(big.iter().all(|p| p.is_finite()));
        assert!((big[0] + big[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn xent_backward_is_softmax_minus_onehot() {
        let shape = SoftmaxShape::new(2, 3);
        let input = [0.5, 0.1, -0.3, 1.0, 1.0, 1.0];
        let probs = softmax_forward(&input, shape);
        let grad = softmax_xent_backward(&input, &[2, 0], shape);
        assert!((grad[2] - (probs[2] - 1.0)).abs() < 1e-6);
        assert!((grad[3] - (probs[3] - 1.0)).abs() < 1e-6);
        assert!((grad[0] - probs[0]).abs() < 1e-6);
        // Gradient rows sum to ~0.
        assert!(grad[..3].iter().sum::<f32>().abs() < 1e-5);
    }

    #[test]
    fn five_kernel_baseline_is_slow_and_latency_bound_for_large_c() {
        let d = DeviceConfig::titan_black();
        let shape = SoftmaxShape::new(128, 10000);
        let pipeline = five_kernel_pipeline(shape);
        let r = simulate_sequence(&d, &boxed_refs(&pipeline), &SimOptions::default()).unwrap();
        assert_eq!(r.kernels.len(), 5);
        assert!(r.dram_gbs() < 60.0, "baseline too fast: {} GB/s", r.dram_gbs());
    }

    #[test]
    fn fused_kernel_reaches_high_bandwidth_at_large_c() {
        // Fig 13: "the bandwidth achieved in Opt can reach 220.95GB/S,
        // which is 94.02% of the effective GPU memory bandwidth".
        let d = DeviceConfig::titan_black();
        let shape = SoftmaxShape::new(128, 10000);
        let r = simulate(&d, &SoftmaxFused::new(shape), &SimOptions::default()).unwrap();
        assert!(r.dram_gbs() > 150.0, "opt only {} GB/s", r.dram_gbs());
    }

    #[test]
    fn ablation_ordering_baseline_fused_serial_fused() {
        // 5-kernel > fused-serial > fused, at every large-ish config.
        let d = DeviceConfig::titan_black();
        for shape in [SoftmaxShape::new(128, 1000), SoftmaxShape::new(64, 10000)] {
            let base = five_kernel_pipeline(shape);
            let t_base =
                simulate_sequence(&d, &boxed_refs(&base), &SimOptions::default()).unwrap().time();
            let t_serial = simulate(&d, &SoftmaxFusedSerial::new(shape), &SimOptions::default())
                .unwrap()
                .time();
            let t_fused =
                simulate(&d, &SoftmaxFused::new(shape), &SimOptions::default()).unwrap().time();
            assert!(
                t_base > t_serial && t_serial > t_fused,
                "{shape}: base {t_base:.2e}, serial {t_serial:.2e}, fused {t_fused:.2e}"
            );
        }
    }

    #[test]
    fn fused_smem_cache_respects_the_11k_limit() {
        assert!(SoftmaxFused::new(SoftmaxShape::new(8, 10000)).caches_input());
        let big = SoftmaxFused::new(SoftmaxShape::new(8, 20000));
        assert!(!big.caches_input());
        // And the uncached fall-back still launches (smem within limits).
        let d = DeviceConfig::titan_black();
        assert!(simulate(&d, &big, &SimOptions::default()).is_ok());
    }

    #[test]
    fn small_configs_are_launch_bound_with_low_bandwidth() {
        // Fig 13's left edge: tiny classifiers cannot utilize bandwidth.
        let d = DeviceConfig::titan_black();
        let r = simulate(&d, &SoftmaxFused::new(SoftmaxShape::new(32, 10)), &SimOptions::default())
            .unwrap();
        assert!(r.dram_gbs() < 10.0);
    }

    #[test]
    fn cudnn_baseline_sits_between_naive_and_fused() {
        let d = DeviceConfig::titan_black();
        let shape = SoftmaxShape::new(128, 10000);
        let naive = five_kernel_pipeline(shape);
        let cudnn = cudnn_pipeline(shape);
        let t_naive =
            simulate_sequence(&d, &boxed_refs(&naive), &SimOptions::default()).unwrap().time();
        let t_cudnn =
            simulate_sequence(&d, &boxed_refs(&cudnn), &SimOptions::default()).unwrap().time();
        let t_fused =
            simulate(&d, &SoftmaxFused::new(shape), &SimOptions::default()).unwrap().time();
        assert!(t_naive > t_cudnn && t_cudnn > t_fused);
    }
}
