//! # memcnn-kernels — CNN kernels as functional code + GPU access models
//!
//! Every layer kernel the SC'16 evaluation touches, in two coupled forms:
//!
//! 1. A **functional CPU implementation** (rayon-parallel, tested against
//!    naive references) that produces real values — so the reproduced
//!    system actually computes CNNs, not just cost estimates.
//! 2. A **[`memcnn_gpusim::KernelSpec`]** that replays the corresponding
//!    CUDA kernel's launch geometry and per-block warp access pattern, so
//!    the simulator can score the memory behaviour the paper analyses.
//!
//! Inventory:
//!
//! | Paper artifact | Module |
//! |---|---|
//! | cuda-convnet direct convolution (CHWN) | [`conv::direct_chwn`] |
//! | Caffe/cuDNN im2col + GEMM convolution (NCHW) | [`conv::mm_nchw`], [`im2col`], [`matmul`] |
//! | cuDNN v4 FFT / FFT-tiling convolution | [`conv::fft_nchw`] |
//! | Pooling: CHWN, NCHW (Caffe/cuDNN), coarsened Opt | [`pool`] |
//! | Softmax: 5-kernel, cuDNN-style, fused-serial, fused Opt | [`softmax`] |
//! | Layout transformation: naive / Opt1 / Opt2 (Fig 7) | [`transform`] |
//! | FC, ReLU, LRN (whole-network support) | [`layers`] |

#![warn(missing_docs)]

pub mod backward;
pub mod conv;
pub mod gemm_model;
pub mod im2col;
pub mod layers;
pub mod matmul;
pub mod pool;
pub mod shapes;
pub mod softmax;
pub mod transform;

pub use shapes::{ConvShape, PoolShape, SoftmaxShape};
