//! Matrix multiplication: a rayon-parallel CPU SGEMM (functional semantics)
//! and a shared-memory-tiled GPU GEMM kernel spec (performance model).
//!
//! GEMM is the substrate under the Caffe/cuDNN convolution path (§II.B:
//! "one is to use Matrix Multiplication to compute convolutions... the
//! strategy used in Caffe and cuDNN") and under fully-connected layers.

use crate::gemm_model::GemmKernel;
use rayon::prelude::*;

/// `C = A x B` for row-major `A (m x k)`, `B (k x n)`; returns row-major
/// `C (m x n)`. Parallel over rows of `C`, with a blocked k-loop that keeps
/// the working set cache-resident.
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A must be m x k");
    assert_eq!(b.len(), k * n, "B must be k x n");
    let mut c = vec![0f32; m * n];
    const KB: usize = 256;
    c.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        let a_row = &a[i * k..(i + 1) * k];
        for k0 in (0..k).step_by(KB) {
            let k1 = (k0 + KB).min(k);
            for (kk, &aik) in a_row[k0..k1].iter().enumerate() {
                let b_row = &b[(k0 + kk) * n..(k0 + kk + 1) * n];
                if aik != 0.0 {
                    for (cj, &bj) in row.iter_mut().zip(b_row) {
                        *cj += aik * bj;
                    }
                }
            }
        }
    });
    c
}

/// Naive triple loop, the oracle `sgemm` is tested against.
pub fn sgemm_naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

pub use crate::gemm_model::GemmConfig;

/// Build the GPU GEMM kernel spec for a `m x k x n` product with fresh
/// device buffers.
pub fn gemm_kernel(m: usize, k: usize, n: usize) -> GemmKernel {
    GemmKernel::with_fresh_buffers(m, k, n, GemmConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        (0..rows * cols).map(|i| f(i / cols, i % cols)).collect()
    }

    #[test]
    fn identity_multiplication() {
        let a = mat(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = mat(3, 4, |i, j| (i * 4 + j) as f32);
        assert_eq!(sgemm(3, 3, 4, &a, &b), b);
    }

    #[test]
    fn matches_naive_on_odd_sizes() {
        for (m, k, n) in [(1, 1, 1), (5, 7, 3), (17, 33, 9), (64, 64, 64), (100, 3, 50)] {
            let a = mat(m, k, |i, j| ((i * 31 + j * 7) % 13) as f32 - 6.0);
            let b = mat(k, n, |i, j| ((i * 17 + j * 3) % 11) as f32 - 5.0);
            let fast = sgemm(m, k, n, &a, &b);
            let slow = sgemm_naive(m, k, n, &a, &b);
            for (x, y) in fast.iter().zip(&slow) {
                assert!((x - y).abs() < 1e-3, "m={m} k={k} n={n}");
            }
        }
    }

    #[test]
    fn blocked_k_loop_crosses_block_boundaries() {
        // k > KB exercises the k-blocking path.
        let (m, k, n) = (2, 600, 2);
        let a = mat(m, k, |_, j| if j % 2 == 0 { 1.0 } else { -1.0 });
        let b = mat(k, n, |i, _| i as f32);
        let fast = sgemm(m, k, n, &a, &b);
        let slow = sgemm_naive(m, k, n, &a, &b);
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "A must be m x k")]
    fn wrong_a_len_panics() {
        sgemm(2, 2, 2, &[1.0; 3], &[1.0; 4]);
    }
}
