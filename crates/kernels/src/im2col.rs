//! im2col: the matrix-unroll step of MM-based convolution.
//!
//! §IV.A: "a matrix unroll step (along H and W) is needed to expand the
//! input matrix, and merge multiple dimensions into two dimensions. Such
//! matrix transformation overhead is more evident when the matrix size is
//! limited." This module provides the functional expansion and the GPU
//! kernel spec whose traffic is that overhead.

use crate::shapes::ConvShape;
use memcnn_gpusim::{
    AddressSpace, BankMode, BlockTrace, DeviceBuffer, KernelSpec, LaunchConfig, WorkSummary,
};
use memcnn_tensor::{Layout, Tensor};

/// Expand an NCHW input into the unrolled matrix
/// `col[Ci*Fh*Fw][N*OH*OW]` (row-major), so that convolution becomes
/// `out = filter[Co][Ci*Fh*Fw] x col`.
///
/// Out-of-bounds taps (padding) contribute zeros.
pub fn im2col(input: &Tensor, shape: &ConvShape) -> Vec<f32> {
    assert_eq!(input.shape(), shape.input_shape(), "input shape mismatch");
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let k = shape.ci * shape.fh * shape.fw;
    let m = shape.n * oh * ow;
    let mut col = vec![0f32; k * m];
    for row in 0..k {
        let ci = row / (shape.fh * shape.fw);
        let fy = (row / shape.fw) % shape.fh;
        let fx = row % shape.fw;
        for n in 0..shape.n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let iy = oy * shape.stride + fy;
                    let ix = ox * shape.stride + fx;
                    let (iy, ix) =
                        (iy as isize - shape.pad as isize, ix as isize - shape.pad as isize);
                    let v =
                        if iy >= 0 && ix >= 0 && (iy as usize) < shape.h && (ix as usize) < shape.w
                        {
                            input.get(n, ci, iy as usize, ix as usize)
                        } else {
                            0.0
                        };
                    col[row * m + (n * oh + oy) * ow + ox] = v;
                }
            }
        }
    }
    col
}

/// The inverse scatter-add (used by backward passes): fold a column matrix
/// back into an NCHW tensor, accumulating overlapping taps.
pub fn col2im(col: &[f32], shape: &ConvShape) -> Tensor {
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let k = shape.ci * shape.fh * shape.fw;
    let m = shape.n * oh * ow;
    assert_eq!(col.len(), k * m, "col matrix size mismatch");
    let mut out = Tensor::zeros(shape.input_shape(), Layout::NCHW);
    for row in 0..k {
        let ci = row / (shape.fh * shape.fw);
        let fy = (row / shape.fw) % shape.fh;
        let fx = row % shape.fw;
        for n in 0..shape.n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let iy = (oy * shape.stride + fy) as isize - shape.pad as isize;
                    let ix = (ox * shape.stride + fx) as isize - shape.pad as isize;
                    if iy >= 0 && ix >= 0 && (iy as usize) < shape.h && (ix as usize) < shape.w {
                        let v = out.get(n, ci, iy as usize, ix as usize)
                            + col[row * m + (n * oh + oy) * ow + ox];
                        out.set(n, ci, iy as usize, ix as usize, v);
                    }
                }
            }
        }
    }
    out
}

/// GPU kernel spec of the im2col expansion over an NCHW input.
///
/// One thread per `col` element, 256-thread blocks; consecutive threads
/// walk `ox`, so writes are coalesced and reads are stride-`S` gathers
/// (perfect at S=1, 2x over-fetch at S=2).
#[derive(Clone, Debug)]
pub struct Im2colKernel {
    shape: ConvShape,
    input: DeviceBuffer,
    col: DeviceBuffer,
}

impl Im2colKernel {
    /// Build with explicit buffers.
    pub fn new(shape: ConvShape, input: DeviceBuffer, col: DeviceBuffer) -> Im2colKernel {
        Im2colKernel { shape, input, col }
    }

    /// Build with fresh buffers.
    pub fn with_fresh_buffers(shape: ConvShape) -> Im2colKernel {
        let mut asp = AddressSpace::new();
        let input = asp.alloc_f32(shape.input_shape().len() as u64);
        let col = asp.alloc_f32(Self::col_elems(&shape) as u64);
        Im2colKernel { shape, input, col }
    }

    /// Elements of the unrolled matrix.
    pub fn col_elems(shape: &ConvShape) -> usize {
        shape.ci * shape.fh * shape.fw * shape.n * shape.out_h() * shape.out_w()
    }

    /// The column buffer (handed to the GEMM that consumes it).
    pub fn col_buffer(&self) -> DeviceBuffer {
        self.col
    }

    /// The input buffer.
    pub fn input_buffer(&self) -> DeviceBuffer {
        self.input
    }
}

impl KernelSpec for Im2colKernel {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        format!("im2col {}", self.shape)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: (Self::col_elems(&self.shape).div_ceil(256)) as u64,
            threads_per_block: 256,
            regs_per_thread: 20,
            smem_per_block: 0,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let s = &self.shape;
        let col_bytes = 4.0 * Self::col_elems(s) as f64;
        let in_bytes = 4.0 * s.input_shape().len() as f64;
        WorkSummary::new(in_bytes, col_bytes, (in_bytes + col_bytes) as u64).with_ilp(2.0)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let s = &self.shape;
        let (oh, ow) = (s.out_h(), s.out_w());
        let m = s.n * oh * ow;
        let total = Self::col_elems(s) as u64;
        let base = block * 256;
        let mut loads = Vec::with_capacity(32);
        let mut stores = Vec::with_capacity(32);
        for w in 0..8u64 {
            loads.clear();
            stores.clear();
            for lane in 0..32u64 {
                let idx = base + w * 32 + lane;
                if idx >= total {
                    break;
                }
                let row = (idx / m as u64) as usize;
                let mm = (idx % m as u64) as usize;
                let ci = row / (s.fh * s.fw);
                let fy = (row / s.fw) % s.fh;
                let fx = row % s.fw;
                let n = mm / (oh * ow);
                let oy = (mm / ow) % oh;
                let ox = mm % ow;
                let iy = (oy * s.stride + fy) as isize - s.pad as isize;
                let ix = (ox * s.stride + fx) as isize - s.pad as isize;
                if iy >= 0 && ix >= 0 && (iy as usize) < s.h && (ix as usize) < s.w {
                    let e = ((n * s.ci + ci) * s.h + iy as usize) * s.w + ix as usize;
                    loads.push(self.input.f32(e as u64));
                }
                stores.push(self.col.f32(idx));
            }
            t.global_load(&loads, 4);
            t.global_store(&stores, 4);
            t.aux(6);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::sgemm;
    use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};
    use memcnn_tensor::Shape;

    fn conv_reference(input: &Tensor, filter: &Tensor, s: &ConvShape) -> Tensor {
        let mut out = Tensor::zeros(s.output_shape(), Layout::NCHW);
        for n in 0..s.n {
            for co in 0..s.co {
                for oy in 0..s.out_h() {
                    for ox in 0..s.out_w() {
                        let mut acc = 0f32;
                        for ci in 0..s.ci {
                            for fy in 0..s.fh {
                                for fx in 0..s.fw {
                                    let iy = (oy * s.stride + fy) as isize - s.pad as isize;
                                    let ix = (ox * s.stride + fx) as isize - s.pad as isize;
                                    if iy >= 0
                                        && ix >= 0
                                        && (iy as usize) < s.h
                                        && (ix as usize) < s.w
                                    {
                                        acc += input.get(n, ci, iy as usize, ix as usize)
                                            * filter.get(co, ci, fy, fx);
                                    }
                                }
                            }
                        }
                        out.set(n, co, oy, ox, acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn im2col_plus_gemm_equals_direct_convolution() {
        let s = ConvShape { pad: 1, ..ConvShape::table1(2, 4, 8, 3, 3, 1) };
        let input = Tensor::random(s.input_shape(), Layout::NCHW, 1);
        let filter = Tensor::random(s.filter_shape(), Layout::NCHW, 2);
        let col = im2col(&input, &s);
        let k = s.ci * s.fh * s.fw;
        let m = s.n * s.out_h() * s.out_w();
        // filter viewed as [Co][K] is exactly its NCHW buffer.
        let out_mat = sgemm(s.co, k, m, filter.as_slice(), &col);
        let expect = conv_reference(&input, &filter, &s);
        for n in 0..s.n {
            for co in 0..s.co {
                for oy in 0..s.out_h() {
                    for ox in 0..s.out_w() {
                        let got = out_mat[co * m + (n * s.out_h() + oy) * s.out_w() + ox];
                        let want = expect.get(n, co, oy, ox);
                        assert!((got - want).abs() < 1e-3, "({n},{co},{oy},{ox})");
                    }
                }
            }
        }
    }

    #[test]
    fn im2col_shapes_and_zeros_padding() {
        let s = ConvShape { pad: 2, ..ConvShape::table1(1, 1, 4, 3, 1, 1) };
        let input = Tensor::full(s.input_shape(), Layout::NCHW, 1.0);
        let col = im2col(&input, &s);
        assert_eq!(col.len(), 9 * s.out_h() * s.out_w());
        // Corner output (0,0) with pad 2: only tap (2,2) is in bounds.
        let m = s.out_h() * s.out_w();
        let in_bounds: usize = (0..9).filter(|row| col[row * m] != 0.0).count();
        assert_eq!(in_bounds, 1);
    }

    #[test]
    fn col2im_adjoint_inverts_on_disjoint_taps() {
        // Stride == filter size: every input element appears exactly once,
        // so col2im(im2col(x)) == x.
        let s = ConvShape::table1(2, 1, 8, 2, 3, 2);
        let input = Tensor::random(s.input_shape(), Layout::NCHW, 3);
        let col = im2col(&input, &s);
        let back = col2im(&col, &s);
        assert!(input.approx_eq(&back, 1e-6));
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // 3x3 window stride 1 on 3x3 input: single output, every tap used
        // once; center of a 5x5 with stride 1 is used 9 times.
        let s = ConvShape::table1(1, 1, 5, 3, 1, 1);
        let input = Tensor::full(s.input_shape(), Layout::NCHW, 1.0);
        let col = im2col(&input, &s);
        let back = col2im(&col, &s);
        assert_eq!(back.get(0, 0, 2, 2), 9.0);
        assert_eq!(back.get(0, 0, 0, 0), 1.0);
    }

    #[test]
    fn kernel_traffic_scales_with_filter_area() {
        // The unroll writes Fh*Fw copies of the input: traffic is dominated
        // by the expanded matrix (the §IV.A overhead).
        let d = DeviceConfig::titan_black();
        let s3 = ConvShape::table1(32, 64, 28, 3, 16, 1);
        let s5 = ConvShape::table1(32, 64, 28, 5, 16, 1);
        let r3 =
            simulate(&d, &Im2colKernel::with_fresh_buffers(s3), &SimOptions::default()).unwrap();
        let r5 =
            simulate(&d, &Im2colKernel::with_fresh_buffers(s5), &SimOptions::default()).unwrap();
        let ratio = r5.dram_bytes / r3.dram_bytes;
        // 25/9 in written elements (output smaller for 5x5, partially offset).
        assert!(ratio > 1.8 && ratio < 2.8, "ratio {ratio}");
    }

    #[test]
    fn kernel_writes_are_coalesced_at_stride_1() {
        let d = DeviceConfig::titan_black();
        let s = ConvShape::table1(32, 64, 28, 3, 16, 1);
        let r = simulate(&d, &Im2colKernel::with_fresh_buffers(s), &SimOptions::default()).unwrap();
        // moved/requested close to 1 for a mostly-coalesced kernel.
        let overfetch = r.transaction_bytes / r.requested_bytes;
        assert!(overfetch < 1.4, "overfetch {overfetch}");
    }

    #[test]
    fn stride_two_reads_overfetch() {
        let d = DeviceConfig::titan_black();
        let s1 = ConvShape::table1(32, 64, 27, 3, 16, 1);
        let s2 = ConvShape::table1(32, 64, 55, 5, 16, 2);
        let r1 =
            simulate(&d, &Im2colKernel::with_fresh_buffers(s1), &SimOptions::default()).unwrap();
        let r2 =
            simulate(&d, &Im2colKernel::with_fresh_buffers(s2), &SimOptions::default()).unwrap();
        let of1 = r1.transaction_bytes / r1.requested_bytes;
        let of2 = r2.transaction_bytes / r2.requested_bytes;
        assert!(of2 > of1, "stride-2 should over-fetch more: {of1} vs {of2}");
    }

    #[test]
    fn input_tensor_shape_is_validated() {
        let s = ConvShape::table1(2, 4, 8, 3, 3, 1);
        let wrong = Tensor::zeros(Shape::new(1, 3, 8, 8), Layout::NCHW);
        let result = std::panic::catch_unwind(|| im2col(&wrong, &s));
        assert!(result.is_err());
    }
}
