//! Pooling-layer kernels.
//!
//! §IV.B and §V.A: pooling is memory-bound; on `CHWN` the warp runs along
//! `N` and coalesces perfectly, on `NCHW` the window walk produces strided,
//! partially-coalesced accesses; overlapped windows re-load shared input
//! elements unless threads are coarsened to reuse them in registers.
//!
//! - [`pool_forward`], [`pool_backward_avg`], [`pool_backward_max`]:
//!   functional semantics (any layout).
//! - [`chwn::PoolChwn`]: cuda-convnet-style kernel spec (optionally
//!   coarsened — the paper's `Opt`).
//! - [`nchw::PoolNchwCaffe`], [`nchw::PoolNchwCudnn`]: the two NCHW
//!   baselines of Fig 6/12.

pub mod chwn;
pub mod nchw;

use crate::shapes::PoolShape;
use memcnn_tensor::{Layout, Tensor};
use rayon::prelude::*;

/// Pooling operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolOp {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window (Eq. 2 of the paper).
    Avg,
}

/// Functional pooling over logical coordinates; accepts any input layout
/// and produces `out_layout`. Parallel over `(n, c)` slices.
pub fn pool_forward(input: &Tensor, shape: &PoolShape, op: PoolOp, out_layout: Layout) -> Tensor {
    assert_eq!(input.shape(), shape.input_shape(), "input shape mismatch");
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut out = Tensor::zeros(shape.output_shape(), out_layout);
    let planes: Vec<((usize, usize), Vec<f32>)> = (0..shape.n * shape.c)
        .into_par_iter()
        .map(|idx| {
            let (n, c) = (idx / shape.c, idx % shape.c);
            let mut plane = vec![0f32; oh * ow];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = if op == PoolOp::Max { f32::NEG_INFINITY } else { 0.0 };
                    let mut count = 0usize;
                    for ky in 0..shape.window {
                        let iy = oy * shape.stride + ky;
                        if iy >= shape.h {
                            break; // ceil-mode edge window clamps
                        }
                        for kx in 0..shape.window {
                            let ix = ox * shape.stride + kx;
                            if ix >= shape.w {
                                break;
                            }
                            let v = input.get(n, c, iy, ix);
                            count += 1;
                            match op {
                                PoolOp::Max => acc = acc.max(v),
                                PoolOp::Avg => acc += v,
                            }
                        }
                    }
                    if op == PoolOp::Avg {
                        // Average over the clamped window (cuda-convnet's
                        // convention: padding is excluded).
                        acc /= count as f32;
                    }
                    plane[oy * ow + ox] = acc;
                }
            }
            ((n, c), plane)
        })
        .collect();
    for ((n, c), plane) in planes {
        for oy in 0..oh {
            for ox in 0..ow {
                out.set(n, c, oy, ox, plane[oy * ow + ox]);
            }
        }
    }
    out
}

/// Backward pass of average pooling: distribute each output gradient
/// uniformly over its window (overlaps accumulate).
pub fn pool_backward_avg(grad_out: &Tensor, shape: &PoolShape, out_layout: Layout) -> Tensor {
    assert_eq!(grad_out.shape(), shape.output_shape(), "grad shape mismatch");
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut grad_in = Tensor::zeros(shape.input_shape(), out_layout);
    for n in 0..shape.n {
        for c in 0..shape.c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let taps: Vec<(usize, usize)> = window_taps(shape, oy, ox).collect();
                    let g = grad_out.get(n, c, oy, ox) / taps.len() as f32;
                    for (iy, ix) in taps {
                        let v = grad_in.get(n, c, iy, ix) + g;
                        grad_in.set(n, c, iy, ix, v);
                    }
                }
            }
        }
    }
    grad_in
}

/// In-bounds input taps of one output's (possibly clamped) window.
fn window_taps(
    shape: &PoolShape,
    oy: usize,
    ox: usize,
) -> impl Iterator<Item = (usize, usize)> + '_ {
    let y0 = oy * shape.stride;
    let x0 = ox * shape.stride;
    (y0..(y0 + shape.window).min(shape.h))
        .flat_map(move |iy| (x0..(x0 + shape.window).min(shape.w)).map(move |ix| (iy, ix)))
}

/// Backward pass of max pooling: route each output gradient to the argmax
/// input position (first-wins tie-breaking, as in Caffe).
pub fn pool_backward_max(
    input: &Tensor,
    grad_out: &Tensor,
    shape: &PoolShape,
    out_layout: Layout,
) -> Tensor {
    assert_eq!(input.shape(), shape.input_shape());
    assert_eq!(grad_out.shape(), shape.output_shape());
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut grad_in = Tensor::zeros(shape.input_shape(), out_layout);
    for n in 0..shape.n {
        for c in 0..shape.c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut arg = (0, 0);
                    for (iy, ix) in window_taps(shape, oy, ox) {
                        let v = input.get(n, c, iy, ix);
                        if v > best {
                            best = v;
                            arg = (iy, ix);
                        }
                    }
                    let v = grad_in.get(n, c, arg.0, arg.1) + grad_out.get(n, c, oy, ox);
                    grad_in.set(n, c, arg.0, arg.1, v);
                }
            }
        }
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_tensor::Shape;

    #[test]
    fn max_pool_simple() {
        let s = PoolShape::table1(1, 4, 2, 1, 2);
        let input = Tensor::from_fn(s.input_shape(), Layout::NCHW, |_, _, h, w| (h * 4 + w) as f32);
        let out = pool_forward(&input, &s, PoolOp::Max, Layout::NCHW);
        assert_eq!(out.shape(), Shape::new(1, 1, 2, 2));
        assert_eq!(out.get(0, 0, 0, 0), 5.0);
        assert_eq!(out.get(0, 0, 1, 1), 15.0);
    }

    #[test]
    fn avg_pool_simple() {
        let s = PoolShape::table1(1, 4, 2, 1, 2);
        let input = Tensor::full(s.input_shape(), Layout::NCHW, 3.0);
        let out = pool_forward(&input, &s, PoolOp::Avg, Layout::NCHW);
        for (_, v) in out.iter_logical() {
            assert!((v - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn overlapped_windows_share_elements() {
        // 5x5, win 3, stride 2 -> 2x2 outputs; all windows share (2,2).
        let input = Tensor::from_fn(Shape::new(1, 1, 5, 5), Layout::NCHW, |_, _, h, w| {
            if (h, w) == (2, 2) {
                100.0
            } else {
                (h * 5 + w) as f32
            }
        });
        let out =
            pool_forward(&input, &PoolShape::table1(1, 5, 3, 1, 2), PoolOp::Max, Layout::NCHW);
        // The shared center element dominates all four windows.
        for (_, v) in out.iter_logical() {
            assert_eq!(v, 100.0);
        }
    }

    #[test]
    fn layouts_do_not_change_semantics() {
        let s = PoolShape::table1(4, 9, 3, 8, 2);
        let base = Tensor::random(s.input_shape(), Layout::NCHW, 20);
        let want = pool_forward(&base, &s, PoolOp::Max, Layout::NCHW);
        for layout in [Layout::CHWN, Layout::NHWC, Layout::HWCN] {
            let input = base.to_layout(layout);
            let got = pool_forward(&input, &s, PoolOp::Max, layout);
            assert!(got.approx_eq(&want, 0.0), "layout {layout}");
        }
    }

    #[test]
    fn avg_backward_distributes_uniformly() {
        let s = PoolShape::table1(1, 4, 2, 1, 2);
        let g = Tensor::full(s.output_shape(), Layout::NCHW, 4.0);
        let gi = pool_backward_avg(&g, &s, Layout::NCHW);
        for (_, v) in gi.iter_logical() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn avg_backward_accumulates_overlaps() {
        let s = PoolShape::table1(1, 5, 3, 1, 2);
        let g = Tensor::full(s.output_shape(), Layout::NCHW, 9.0);
        let gi = pool_backward_avg(&g, &s, Layout::NCHW);
        // Center element (2,2) belongs to all 4 windows: 4 * 9/9 = 4.
        assert!((gi.get(0, 0, 2, 2) - 4.0).abs() < 1e-6);
        // Corner (0,0) belongs to 1 window.
        assert!((gi.get(0, 0, 0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn max_backward_routes_to_argmax() {
        let s = PoolShape::table1(1, 4, 2, 1, 2);
        let input = Tensor::from_fn(s.input_shape(), Layout::NCHW, |_, _, h, w| (h * 4 + w) as f32);
        let g = Tensor::full(s.output_shape(), Layout::NCHW, 1.0);
        let gi = pool_backward_max(&input, &g, &s, Layout::NCHW);
        assert_eq!(gi.get(0, 0, 1, 1), 1.0); // argmax of the first window
        assert_eq!(gi.get(0, 0, 0, 0), 0.0);
        let total: f32 = gi.iter_logical().map(|(_, v)| v).sum();
        assert_eq!(total, 4.0);
    }
}

#[cfg(test)]
mod ceil_mode_tests {
    use super::*;
    use memcnn_tensor::{Layout, Tensor};

    #[test]
    fn ceil_mode_output_dims_match_frameworks() {
        // Cifar10: 24, win 3, stride 2 -> 12 (ceil), 11 (floor).
        let floor = PoolShape::table1(1, 24, 3, 1, 2);
        let ceil = floor.with_ceil_mode(true);
        assert_eq!(floor.out_h(), 11);
        assert_eq!(ceil.out_h(), 12);
        // ZFNet PL8: 110 -> 55 in ceil mode.
        assert_eq!(PoolShape::table1(1, 110, 3, 1, 2).with_ceil_mode(true).out_h(), 55);
        // AlexNet PL5: 55 -> 27 either way.
        assert_eq!(PoolShape::table1(1, 55, 3, 1, 2).out_h(), 27);
        assert_eq!(PoolShape::table1(1, 55, 3, 1, 2).with_ceil_mode(true).out_h(), 27);
    }

    #[test]
    fn ceil_mode_edge_windows_clamp() {
        let s = PoolShape::table1(1, 6, 3, 1, 2).with_ceil_mode(true); // out 3: starts 0,2,4 (4..6 clamped)
        assert_eq!(s.out_h(), 3);
        let input = Tensor::from_fn(s.input_shape(), Layout::NCHW, |_, _, h, w| (h * 6 + w) as f32);
        let max = pool_forward(&input, &s, PoolOp::Max, Layout::NCHW);
        // Last window covers rows 4..6, cols 4..6; max element = 35.
        assert_eq!(max.get(0, 0, 2, 2), 35.0);
        let avg = pool_forward(&input, &s, PoolOp::Avg, Layout::NCHW);
        // Clamped 2x2 window {28,29,34,35} -> 31.5 (divided by 4, not 9).
        assert_eq!(avg.get(0, 0, 2, 2), 31.5);
    }

    #[test]
    fn ceil_mode_backward_conserves_gradient_mass() {
        let s = PoolShape::table1(1, 5, 3, 1, 2).with_ceil_mode(true); // out 2x2, last clamped
        let g = Tensor::full(s.output_shape(), Layout::NCHW, 1.0);
        let gi = pool_backward_avg(&g, &s, Layout::NCHW);
        let mass: f32 = gi.iter_logical().map(|(_, v)| v).sum();
        assert!((mass - s.output_shape().len() as f32).abs() < 1e-4);
    }

    #[test]
    fn ceil_mode_specs_simulate() {
        use crate::pool::chwn::PoolChwn;
        use crate::pool::nchw::{PoolNchwCaffe, PoolNchwCudnn};
        use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};
        let d = DeviceConfig::titan_black();
        let s = PoolShape::table1(64, 110, 3, 96, 2).with_ceil_mode(true); // PL8
        assert_eq!(s.out_h(), 55);
        for r in [
            simulate(&d, &PoolChwn::new(s), &SimOptions::default()).unwrap(),
            simulate(&d, &PoolNchwCaffe::new(s), &SimOptions::default()).unwrap(),
            simulate(&d, &PoolNchwCudnn::new(s), &SimOptions::default()).unwrap(),
        ] {
            assert!(r.time() > 0.0);
        }
    }
}
