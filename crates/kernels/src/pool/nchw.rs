//! NCHW pooling kernel specs — the Caffe and cuDNN baselines of Fig 6.
//!
//! §IV.B: "for the NCHW data layout ... the pooling operations on each
//! pooling region of the feature map are directly applied to the pixels
//! that are stored in memory consecutively ... the consecutive threads in a
//! warp generate memory accesses with a stride. Such strided accesses from
//! a warp are un-coalesced, resulting in over-fetching and poor memory
//! efficiency."

use crate::shapes::PoolShape;
use memcnn_gpusim::{
    AddressSpace, BankMode, BlockTrace, DeviceBuffer, KernelSpec, LaunchConfig, WorkSummary,
};

/// Caffe's pooling kernel: one thread per output element over the flat
/// `N*C*OH*OW` index space (output-major, `ox` fastest), 256-thread blocks.
#[derive(Clone, Debug)]
pub struct PoolNchwCaffe {
    shape: PoolShape,
    input: DeviceBuffer,
    output: DeviceBuffer,
}

impl PoolNchwCaffe {
    /// Build with fresh buffers.
    pub fn new(shape: PoolShape) -> PoolNchwCaffe {
        let mut asp = AddressSpace::new();
        let input = asp.alloc_f32(shape.input_shape().len() as u64);
        let output = asp.alloc_f32(shape.output_shape().len() as u64);
        PoolNchwCaffe { shape, input, output }
    }
}

impl KernelSpec for PoolNchwCaffe {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        format!("pool-nchw-caffe {}", self.shape)
    }

    fn launch(&self) -> LaunchConfig {
        let outputs = self.shape.output_shape().len();
        LaunchConfig {
            grid_blocks: outputs.div_ceil(256) as u64,
            threads_per_block: 256,
            regs_per_thread: 24,
            smem_per_block: 0,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let s = &self.shape;
        let in_bytes = 4.0 * s.input_shape().len() as f64;
        let out_bytes = 4.0 * s.output_shape().len() as f64;
        WorkSummary::new(in_bytes, out_bytes, (in_bytes + out_bytes) as u64)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let s = &self.shape;
        let (oh, ow) = (s.out_h(), s.out_w());
        let total = (s.n * s.c * oh * ow) as u64;
        let base = block * 256;
        let mut addrs = Vec::with_capacity(32);
        for w in 0..8u64 {
            let warp_base = base + w * 32;
            if warp_base >= total {
                break;
            }
            // Window loads: one warp access per (ky, kx), lanes at their
            // own output's tap — strided by `stride`, and discontinuous
            // where lanes cross output rows.
            for ky in 0..s.window {
                for kx in 0..s.window {
                    addrs.clear();
                    for lane in 0..32u64 {
                        let idx = warp_base + lane;
                        if idx >= total {
                            break;
                        }
                        let ox = (idx as usize) % ow;
                        let oy = (idx as usize / ow) % oh;
                        let c = (idx as usize / (ow * oh)) % s.c;
                        let n = idx as usize / (ow * oh * s.c);
                        let iy = oy * s.stride + ky;
                        let ix = ox * s.stride + kx;
                        if iy >= s.h || ix >= s.w {
                            continue; // ceil-mode edge clamp
                        }
                        let e = ((n * s.c + c) * s.h + iy) * s.w + ix;
                        addrs.push(self.input.f32(e as u64));
                    }
                    t.global_load(&addrs, 4);
                }
            }
            t.flops(32 * (s.window * s.window) as u64);
            t.aux(s.window as u64 * 2 + 4);
            // Store: flat output index — coalesced.
            addrs.clear();
            for lane in 0..32u64 {
                let idx = warp_base + lane;
                if idx >= total {
                    break;
                }
                addrs.push(self.output.f32(idx));
            }
            t.global_store(&addrs, 4);
        }
    }
}

/// cuDNN-style NCHW pooling: 2D blocks of 32x8 threads tiled over
/// `(ox, oy)` per `(n, c)` plane. For feature maps narrower than 32 the
/// warp's trailing lanes are masked off — wasted issue slots that hurt the
/// deep, small-map layers (PL7, PL10) hardest.
#[derive(Clone, Debug)]
pub struct PoolNchwCudnn {
    shape: PoolShape,
    input: DeviceBuffer,
    output: DeviceBuffer,
}

impl PoolNchwCudnn {
    /// Build with fresh buffers.
    pub fn new(shape: PoolShape) -> PoolNchwCudnn {
        let mut asp = AddressSpace::new();
        let input = asp.alloc_f32(shape.input_shape().len() as u64);
        let output = asp.alloc_f32(shape.output_shape().len() as u64);
        PoolNchwCudnn { shape, input, output }
    }

    fn tiles_x(&self) -> usize {
        self.shape.out_w().div_ceil(32)
    }

    fn tiles_y(&self) -> usize {
        self.shape.out_h().div_ceil(8)
    }
}

impl KernelSpec for PoolNchwCudnn {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        format!("pool-nchw-cudnn {}", self.shape)
    }

    fn launch(&self) -> LaunchConfig {
        let s = &self.shape;
        LaunchConfig {
            grid_blocks: (s.n * s.c * self.tiles_x() * self.tiles_y()) as u64,
            threads_per_block: 256,
            regs_per_thread: 28,
            smem_per_block: 0,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let s = &self.shape;
        let in_bytes = 4.0 * s.input_shape().len() as f64;
        let out_bytes = 4.0 * s.output_shape().len() as f64;
        WorkSummary::new(in_bytes, out_bytes, (in_bytes + out_bytes) as u64)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let s = &self.shape;
        let (oh, ow) = (s.out_h(), s.out_w());
        let tx = (block as usize) % self.tiles_x();
        let ty = (block as usize / self.tiles_x()) % self.tiles_y();
        let c = (block as usize / (self.tiles_x() * self.tiles_y())) % s.c;
        let n = block as usize / (self.tiles_x() * self.tiles_y() * s.c);
        let mut addrs = Vec::with_capacity(32);
        for wy in 0..8usize {
            let oy = ty * 8 + wy;
            if oy >= oh {
                continue;
            }
            let ox0 = tx * 32;
            let lanes = 32.min(ow.saturating_sub(ox0));
            if lanes == 0 {
                continue;
            }
            for ky in 0..s.window {
                for kx in 0..s.window {
                    addrs.clear();
                    let iy = oy * s.stride + ky;
                    if iy >= s.h {
                        continue; // ceil-mode edge clamp
                    }
                    for lane in 0..lanes {
                        let ix = (ox0 + lane) * s.stride + kx;
                        if ix >= s.w {
                            break;
                        }
                        let e = ((n * s.c + c) * s.h + iy) * s.w + ix;
                        addrs.push(self.input.f32(e as u64));
                    }
                    t.global_load(&addrs, 4);
                }
            }
            t.flops((lanes * s.window * s.window) as u64);
            t.aux(s.window as u64 * 2 + 6);
            addrs.clear();
            for lane in 0..lanes {
                let e = ((n * s.c + c) * oh + oy) * ow + ox0 + lane;
                addrs.push(self.output.f32(e as u64));
            }
            t.global_store(&addrs, 4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::chwn::PoolChwn;
    use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};

    fn pl5() -> PoolShape {
        // AlexNet POOL5: 55x55, win 3, stride 2, C=96, N=128.
        PoolShape::table1(128, 55, 3, 96, 2)
    }

    #[test]
    fn strided_loads_overfetch() {
        let d = DeviceConfig::titan_black();
        let r = simulate(&d, &PoolNchwCaffe::new(pl5()), &SimOptions::default()).unwrap();
        let overfetch = r.transaction_bytes / r.requested_bytes;
        assert!(overfetch > 1.5, "overfetch {overfetch}");
    }

    #[test]
    fn chwn_beats_nchw_across_the_board() {
        // Fig 6: cuda-convnet outperforms Caffe and cuDNN on every pooling
        // layer.
        let d = DeviceConfig::titan_black();
        for s in [
            PoolShape::table1(128, 28, 2, 16, 2), // PL1
            pl5(),                                // PL5
            PoolShape::table1(64, 13, 3, 256, 2), // PL10
        ] {
            let chwn = simulate(&d, &PoolChwn::new(s), &SimOptions::default()).unwrap();
            let caffe = simulate(&d, &PoolNchwCaffe::new(s), &SimOptions::default()).unwrap();
            let cudnn = simulate(&d, &PoolNchwCudnn::new(s), &SimOptions::default()).unwrap();
            assert!(
                chwn.time() < caffe.time() && chwn.time() < cudnn.time(),
                "{s}: chwn {:.0}us caffe {:.0}us cudnn {:.0}us",
                chwn.time() * 1e6,
                caffe.time() * 1e6,
                cudnn.time() * 1e6
            );
        }
    }

    #[test]
    fn cudnn_suffers_on_narrow_feature_maps() {
        // PL7/PL10-class maps (W=13 < 32): cuDNN's 32-wide warp tiles mask
        // most lanes; Caffe's flat indexing does not.
        let d = DeviceConfig::titan_black();
        let s = PoolShape::table1(128, 13, 3, 256, 2);
        let caffe = simulate(&d, &PoolNchwCaffe::new(s), &SimOptions::default()).unwrap();
        let cudnn = simulate(&d, &PoolNchwCudnn::new(s), &SimOptions::default()).unwrap();
        // Masked lanes cost issue slots and memory instructions; on layers
        // where the shared L2 bound dominates both, total times stay close
        // — so assert the mechanism plus a near-tie.
        assert!(cudnn.timing.t_issue > 2.0 * caffe.timing.t_issue);
        assert!(cudnn.time() >= 0.95 * caffe.time());
    }

    #[test]
    fn both_nchw_kernels_count_correct_flops() {
        let d = DeviceConfig::titan_black();
        let s = PoolShape::table1(32, 26, 3, 16, 2);
        let expect = (s.n * s.c * s.out_h() * s.out_w() * s.window * s.window) as f64;
        for r in [
            simulate(&d, &PoolNchwCaffe::new(s), &SimOptions::default()).unwrap(),
            simulate(&d, &PoolNchwCudnn::new(s), &SimOptions::default()).unwrap(),
        ] {
            assert!((r.flops - expect).abs() / expect < 0.1, "{} vs {expect}", r.flops);
        }
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};

    #[test]
    #[ignore]
    fn debug_nchw_breakdown() {
        let d = DeviceConfig::titan_black();
        let s = PoolShape::table1(128, 13, 3, 256, 2);
        let caffe = simulate(&d, &PoolNchwCaffe::new(s), &SimOptions::default()).unwrap();
        let cudnn = simulate(&d, &PoolNchwCudnn::new(s), &SimOptions::default()).unwrap();
        for (tag, r) in [("caffe", caffe), ("cudnn", cudnn)] {
            println!("{tag}: {:?}", r.timing);
            println!(
                "  dram={:.2}MB tx={:.2}MB req={:.2}MB l2hit={:.2} grid={} sampled={}",
                r.dram_bytes / 1e6,
                r.transaction_bytes / 1e6,
                r.requested_bytes / 1e6,
                r.l2_hit_rate,
                r.grid_blocks,
                r.sampled_blocks
            );
        }
    }
}
