//! CHWN pooling kernel spec (cuda-convnet style) with optional thread
//! coarsening — the paper's §V.A optimization.
//!
//! Base kernel: 128-thread blocks, each warp handles one output position
//! for 32 images; loads coalesce along the innermost `N`. Coarsened kernel:
//! each warp handles a `uy x ux` tile of output positions, loading the
//! *union* of their (overlapping) windows once into registers — the
//! reduction in off-chip requests that Fig 12's `Opt` bars measure.

use crate::shapes::PoolShape;
use memcnn_gpusim::{
    AddressSpace, BankMode, BlockTrace, DeviceBuffer, KernelSpec, LaunchConfig, WorkSummary,
};

/// Warps per block.
const WARPS: usize = 4;

/// CHWN pooling kernel spec.
#[derive(Clone, Debug)]
pub struct PoolChwn {
    shape: PoolShape,
    /// Outputs per thread along `x` (1 = no coarsening).
    ux: usize,
    /// Outputs per thread along `y`.
    uy: usize,
    input: DeviceBuffer,
    output: DeviceBuffer,
}

impl PoolChwn {
    /// The uncoarsened cuda-convnet baseline.
    pub fn new(shape: PoolShape) -> PoolChwn {
        PoolChwn::coarsened(shape, 1, 1)
    }

    /// A coarsened variant with `ux x uy` outputs per thread.
    pub fn coarsened(shape: PoolShape, ux: usize, uy: usize) -> PoolChwn {
        assert!(ux >= 1 && uy >= 1, "expansion factors must be positive");
        let mut asp = AddressSpace::new();
        let input = asp.alloc_f32(shape.input_shape().len() as u64);
        let output = asp.alloc_f32(shape.output_shape().len() as u64);
        PoolChwn { shape, ux, uy, input, output }
    }

    /// Expansion factors `(ux, uy)`.
    pub fn expansion(&self) -> (usize, usize) {
        (self.ux, self.uy)
    }

    /// Union-window edge along x: `(ux-1)*stride + window`.
    fn union_w(&self) -> usize {
        (self.ux - 1) * self.shape.stride + self.shape.window
    }

    fn union_h(&self) -> usize {
        (self.uy - 1) * self.shape.stride + self.shape.window
    }

    /// Output tiles (warp work units).
    fn tiles(&self) -> usize {
        let (oh, ow) = (self.shape.out_h(), self.shape.out_w());
        self.shape.c * oh.div_ceil(self.uy) * ow.div_ceil(self.ux)
    }

    fn img_groups(&self) -> usize {
        self.shape.n.div_ceil(32)
    }
}

impl KernelSpec for PoolChwn {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        if (self.ux, self.uy) == (1, 1) {
            format!("pool-chwn {}", self.shape)
        } else {
            format!("pool-chwn-coarsened {}x{} {}", self.ux, self.uy, self.shape)
        }
    }

    fn launch(&self) -> LaunchConfig {
        let warp_units = self.tiles() * self.img_groups();
        LaunchConfig {
            grid_blocks: warp_units.div_ceil(WARPS) as u64,
            threads_per_block: (WARPS * 32) as u32,
            // The union window lives in registers — the §V.A register
            // pressure that stops the hill climb.
            regs_per_thread: (16 + self.union_w() * self.union_h()).min(255) as u32,
            smem_per_block: 0,
            bank_mode: BankMode::FourByte,
        }
    }

    fn work(&self) -> WorkSummary {
        let s = &self.shape;
        let in_bytes = 4.0 * s.input_shape().len() as f64;
        let out_bytes = 4.0 * s.output_shape().len() as f64;
        WorkSummary::new(in_bytes, out_bytes, (in_bytes + out_bytes) as u64)
            .with_ilp((self.ux * self.uy) as f64)
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        let s = &self.shape;
        let (oh, ow) = (s.out_h(), s.out_w());
        let tiles_x = ow.div_ceil(self.ux);
        let tiles_y = oh.div_ceil(self.uy);
        let tiles = self.tiles();
        let mut addrs = Vec::with_capacity(32);
        for w in 0..WARPS as u64 {
            let unit = block * WARPS as u64 + w;
            if unit >= (tiles * self.img_groups()) as u64 {
                break;
            }
            let tile = (unit as usize) % tiles;
            let img_g = (unit as usize) / tiles;
            let c = tile / (tiles_y * tiles_x);
            let ty = (tile / tiles_x) % tiles_y;
            let tx = tile % tiles_x;
            let oy0 = ty * self.uy;
            let ox0 = tx * self.ux;
            let n0 = img_g * 32;
            let lanes = 32.min(s.n - n0);

            // Load the union of the tile's windows once (register reuse).
            let y_lo = oy0 * s.stride;
            let x_lo = ox0 * s.stride;
            let y_hi = (y_lo + self.union_h()).min(s.h);
            let x_hi = (x_lo + self.union_w()).min(s.w);
            for iy in y_lo..y_hi {
                for ix in x_lo..x_hi {
                    addrs.clear();
                    let row = ((c * s.h + iy) * s.w + ix) * s.n + n0;
                    for lane in 0..lanes {
                        addrs.push(self.input.f32((row + lane) as u64));
                    }
                    t.global_load(&addrs, 4);
                }
            }
            // Compute: every output consumes window^2 compares/adds.
            let outs_y = self.uy.min(oh - oy0);
            let outs_x = self.ux.min(ow - ox0);
            t.flops((outs_y * outs_x * s.window * s.window * lanes) as u64);
            t.aux(((y_hi - y_lo) * (x_hi - x_lo)) as u64 / 2 + 4);
            // Store the tile's outputs, coalesced along N.
            for oy in oy0..oy0 + outs_y {
                for ox in ox0..ox0 + outs_x {
                    addrs.clear();
                    let row = ((c * oh + oy) * ow + ox) * s.n + n0;
                    for lane in 0..lanes {
                        addrs.push(self.output.f32((row + lane) as u64));
                    }
                    t.global_store(&addrs, 4);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};

    fn pl3() -> PoolShape {
        // Cifar POOL3: 24x24, win 3, stride 2, C=64, N=128 (overlapped).
        PoolShape::table1(128, 24, 3, 64, 2)
    }

    #[test]
    fn baseline_is_coalesced_and_bandwidth_bound() {
        let d = DeviceConfig::titan_black();
        let r = simulate(&d, &PoolChwn::new(pl3()), &SimOptions::default()).unwrap();
        let overfetch = r.transaction_bytes / r.requested_bytes;
        assert!(overfetch < 1.1, "overfetch {overfetch}");
        assert!(r.dram_gbs() > 80.0, "achieved {} GB/s", r.dram_gbs());
    }

    #[test]
    fn coarsening_reduces_requested_traffic_on_overlapped_pooling() {
        let d = DeviceConfig::titan_black();
        let base = simulate(&d, &PoolChwn::new(pl3()), &SimOptions::default()).unwrap();
        let opt = simulate(&d, &PoolChwn::coarsened(pl3(), 2, 2), &SimOptions::default()).unwrap();
        // Union of a 2x2 tile of 3x3/stride-2 windows: 5x5=25 loads for 4
        // outputs vs 36 uncoarsened (partial edge tiles give some back; the
        // paper's own PL3 numbers are -9.1% transactions, -36% DRAM).
        assert!(
            opt.requested_bytes < 0.90 * base.requested_bytes,
            "opt {} vs base {}",
            opt.requested_bytes,
            base.requested_bytes
        );
        // Our L2 model credits the baseline's overlap re-reads more than
        // the paper's Titan Black profiling did, so the time gain is
        // attenuated relative to the paper's +33.9%; it must at least not
        // regress.
        assert!(opt.time() <= 1.03 * base.time());
    }

    #[test]
    fn coarsening_does_not_help_non_overlapped_pooling() {
        // PL1: win 2, stride 2 — windows are disjoint, the union equals the
        // sum, so requested bytes stay put.
        let d = DeviceConfig::titan_black();
        let s = PoolShape::table1(128, 28, 2, 16, 2);
        let base = simulate(&d, &PoolChwn::new(s), &SimOptions::default()).unwrap();
        let opt = simulate(&d, &PoolChwn::coarsened(s, 2, 2), &SimOptions::default()).unwrap();
        let ratio = opt.requested_bytes / base.requested_bytes;
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn excessive_coarsening_spills_occupancy() {
        // Large unions inflate register pressure; occupancy collapses —
        // the cliff the hill-climbing auto-tuner stops at.
        let small = PoolChwn::coarsened(pl3(), 1, 1).launch();
        let big = PoolChwn::coarsened(pl3(), 8, 8).launch();
        assert!(big.regs_per_thread > 3 * small.regs_per_thread);
    }

    #[test]
    fn flops_count_every_window_element() {
        let d = DeviceConfig::titan_black();
        let s = pl3();
        let r = simulate(&d, &PoolChwn::new(s), &SimOptions::default()).unwrap();
        let expect = (s.n * s.c * s.out_h() * s.out_w() * s.window * s.window) as f64;
        assert!((r.flops - expect).abs() / expect < 0.05, "{} vs {expect}", r.flops);
    }

    #[test]
    fn edge_tiles_clamp_to_bounds() {
        // 13x13 output (PL7-like) with ux=4: last tile is partial; the
        // kernel must not crash and flops must still match.
        let d = DeviceConfig::titan_black();
        let s = PoolShape::table1(64, 13, 3, 256, 2);
        let r = simulate(&d, &PoolChwn::coarsened(s, 4, 2), &SimOptions::default()).unwrap();
        let expect = (s.n * s.c * s.out_h() * s.out_w() * s.window * s.window) as f64;
        assert!((r.flops - expect).abs() / expect < 0.10, "{} vs {expect}", r.flops);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};

    #[test]
    #[ignore]
    fn debug_breakdown() {
        let d = DeviceConfig::titan_black();
        let s = PoolShape::table1(128, 24, 3, 64, 2);
        for (tag, k) in [
            ("base", PoolChwn::new(s)),
            ("2x2", PoolChwn::coarsened(s, 2, 2)),
            ("4x2", PoolChwn::coarsened(s, 4, 2)),
        ] {
            let r = simulate(&d, &k, &SimOptions::default()).unwrap();
            println!("{tag}: {:?}", r.timing);
            println!(
                "  dram={:.2}MB tx={:.2}MB req={:.2}MB l2hit={:.2} grid={}",
                r.dram_bytes / 1e6,
                r.transaction_bytes / 1e6,
                r.requested_bytes / 1e6,
                r.l2_hit_rate,
                r.grid_blocks
            );
        }
    }
}
