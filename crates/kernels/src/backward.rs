//! Backward-pass kernel specs (training support).
//!
//! The paper's footnote 1 (§II.A): "The same data structure and convolution
//! operation are used in both the forward pass and backward pass for
//! testing and training CNNs" — and its §IV.D profiling is a "complete
//! forward-backward" run. This module provides the backward-pass cost
//! models by composing the existing kernel families:
//!
//! - **conv, gradient w.r.t. data**: convolution with channels swapped and
//!   the filter rotated — the same kernel family as the forward pass
//!   (cuda-convnet's `imgActs` / the MM path's transposed GEMM), so it is
//!   modelled by the forward specs on the transposed shape.
//! - **conv, gradient w.r.t. weights**: a reduction over the batch and
//!   output pixels — a GEMM of `[Co][N*OH*OW] x [N*OH*OW][Ci*Fh*Fw]`
//!   (`weightActs` / im2col-transposed GEMM).
//! - **pooling backward**: a scatter of output gradients into the input
//!   gradient; same coalescing story as forward (CHWN coalesces along N,
//!   NCHW strides).
//! - **element-wise backward** (ReLU, softmax+xent, LRN approximations):
//!   streaming kernels.

use crate::conv::direct_chwn::DirectConvChwn;
use crate::gemm_model::{GemmConfig, GemmKernel};
use crate::layers::ElementwiseKernel;
use crate::pool::chwn::PoolChwn;
use crate::pool::nchw::PoolNchwCaffe;
use crate::shapes::{ConvShape, PoolShape};
use memcnn_gpusim::KernelSpec;
use memcnn_tensor::Layout;

/// The shape whose *forward* cost equals the backward-data cost of
/// `shape`: channels swapped, spatial dims taken from the output, filter
/// unchanged. For stride 1 this is exact (full correlation with the
/// rotated filter, pad `f-1-p`); for strided convolutions the dilated
/// scatter has the same FLOP and traffic volume as the forward pass, so
/// the forward shape itself is the cost proxy.
pub fn backward_data_shape(shape: &ConvShape) -> ConvShape {
    if shape.stride == 1 {
        ConvShape {
            n: shape.n,
            ci: shape.co,
            h: shape.out_h(),
            w: shape.out_w(),
            co: shape.ci,
            fh: shape.fh,
            fw: shape.fw,
            stride: 1,
            pad: shape.fh - 1 - shape.pad.min(shape.fh - 1),
        }
    } else {
        *shape
    }
}

/// Cost model of the weight-gradient reduction
/// `grad_W[Co][Ci*Fh*Fw] = grad_out[Co][N*OH*OW] x col(input)^T`.
///
/// The literal GEMM is tall in K (`N*OH*OW`) with a tiny output — real
/// implementations split the reduction across blocks to recover
/// parallelism and land at forward-GEMM throughput, so the model uses the
/// forward product's geometry (identical FLOP volume and operand sizes).
pub fn weight_grad_gemm(shape: &ConvShape) -> GemmKernel {
    let m = shape.co;
    let k = shape.ci * shape.fh * shape.fw;
    let n = shape.n * shape.out_h() * shape.out_w();
    GemmKernel::with_fresh_buffers(m, k, n, GemmConfig::default())
}

/// Backward kernels of a convolution in the CHWN/direct family.
pub fn conv_backward_chwn(shape: &ConvShape) -> Vec<Box<dyn KernelSpec + Send>> {
    vec![
        Box::new(DirectConvChwn::new(backward_data_shape(shape))),
        Box::new(weight_grad_gemm(shape)),
    ]
}

/// Backward kernels of a convolution in the NCHW/MM family: the data
/// gradient is another im2col+GEMM pipeline on the transposed shape, plus
/// the weight-gradient GEMM.
pub fn conv_backward_nchw(shape: &ConvShape) -> Vec<Box<dyn KernelSpec + Send>> {
    let mut kernels: Vec<Box<dyn KernelSpec + Send>> = Vec::new();
    // MmConvNchw owns its kernels; re-create equivalent specs.
    let s = backward_data_shape(shape);
    let im2col = crate::im2col::Im2colKernel::with_fresh_buffers(s);
    let k = s.ci * s.fh * s.fw;
    let m = s.n * s.out_h() * s.out_w();
    let gemm = GemmKernel::with_fresh_buffers(s.co, k, m, GemmConfig::default());
    kernels.push(Box::new(im2col));
    kernels.push(Box::new(gemm));
    kernels.push(Box::new(weight_grad_gemm(shape)));
    kernels
}

/// Backward kernel of a pooling layer: read `grad_out`, scatter into
/// `grad_in`. Traffic is one pass over each tensor; the layout decides
/// coalescing exactly as in the forward pass, so the forward specs (with
/// input/output roles swapped) serve as the cost model.
pub fn pool_backward_spec(shape: &PoolShape, layout: Layout) -> Box<dyn KernelSpec + Send> {
    if layout == Layout::CHWN {
        Box::new(PoolChwn::new(*shape))
    } else {
        Box::new(PoolNchwCaffe::new(*shape))
    }
}

/// Backward of an element-wise layer over `elems` values (ReLU mask apply,
/// LRN chain rule, softmax-minus-onehot): streaming read-modify-write.
pub fn elementwise_backward(name: &str, elems: u64, flops_per_elem: u64) -> ElementwiseKernel {
    ElementwiseKernel::new(format!("{name}-bwd"), elems, flops_per_elem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_gpusim::{simulate, simulate_sequence, DeviceConfig, SimOptions};

    fn seq_time(ks: &[Box<dyn KernelSpec + Send>]) -> f64 {
        let d = DeviceConfig::titan_black();
        let refs: Vec<&dyn KernelSpec> = ks.iter().map(|k| k.as_ref() as _).collect();
        simulate_sequence(&d, &refs, &SimOptions::default()).unwrap().time()
    }

    #[test]
    fn backward_data_shape_preserves_flops_at_stride_1() {
        let s = ConvShape { pad: 1, ..ConvShape::table1(32, 64, 13, 3, 256, 1) };
        let b = backward_data_shape(&s);
        // Same N, swapped channels, same filter: FLOPs match when the
        // spatial extents reconstruct (they do for same-padding).
        assert_eq!(b.ci, s.co);
        assert_eq!(b.co, s.ci);
        assert_eq!(b.out_h(), s.h, "full correlation reconstructs the input extent");
        assert_eq!(b.flops(), s.flops());
    }

    #[test]
    fn strided_conv_uses_forward_shape_as_proxy() {
        let s = ConvShape::table1(64, 96, 224, 3, 3, 2); // CV5
        assert_eq!(backward_data_shape(&s), s);
    }

    #[test]
    fn weight_grad_gemm_has_reduction_flops() {
        let s = ConvShape::table1(128, 16, 28, 5, 1, 1); // CV1
        let g = weight_grad_gemm(&s);
        // 2 * Co * (N*OH*OW) * (Ci*F*F) — identical to the conv FLOPs.
        assert_eq!(g.flops(), s.flops());
    }

    #[test]
    fn backward_costs_are_comparable_to_forward() {
        // Training folklore: backward ≈ 2x forward for mid-network convs
        // (where both gradients are computed). The model should land in
        // [1x, 5x]. First layers (tiny Ci) are excluded — real frameworks
        // skip their data gradient entirely.
        let d = DeviceConfig::titan_black();
        let s = ConvShape::table1(128, 64, 12, 5, 64, 1); // CV4
        let fwd = simulate(&d, &DirectConvChwn::new(s), &SimOptions::default()).unwrap().time();
        let bwd = seq_time(&conv_backward_chwn(&s));
        let ratio = bwd / fwd;
        assert!((0.8..5.0).contains(&ratio), "bwd/fwd ratio {ratio:.2}");
    }

    #[test]
    fn nchw_backward_pipeline_has_three_kernels() {
        let s = ConvShape::table1(64, 384, 13, 3, 256, 1); // CV7
        let ks = conv_backward_nchw(&s);
        assert_eq!(ks.len(), 3);
        assert!(seq_time(&ks) > 0.0);
    }

    #[test]
    fn pool_backward_layout_story_matches_forward() {
        let d = DeviceConfig::titan_black();
        let s = PoolShape::table1(128, 24, 3, 64, 2);
        let chwn =
            simulate(&d, pool_backward_spec(&s, Layout::CHWN).as_ref(), &SimOptions::default())
                .unwrap();
        let nchw =
            simulate(&d, pool_backward_spec(&s, Layout::NCHW).as_ref(), &SimOptions::default())
                .unwrap();
        assert!(chwn.time() < nchw.time());
    }
}
