//! Fast multi-dimensional data-layout transformation — §IV.C, Fig 7.
//!
//! Transforming `CHWN <-> NCHW` is, after flattening the three dimensions
//! that keep their relative order, a 2D transpose `[CHW][N] <-> [N][CHW]`.
//! Three kernels, exactly the paper's progression:
//!
//! - Naive (Fig 7a): one thread per element, reads coalesced
//!   along the source's innermost dimension, writes strided by the full
//!   row length — severe write over-fetch and a huge grid of tiny blocks.
//! - Opt1 (Fig 7b, steps 1-2): flatten to 2D, stage 32x32
//!   tiles through padded shared memory so both the global loads *and*
//!   stores coalesce.
//! - Opt2 (Fig 7b, step 3): additionally vectorize with
//!   `float2` under Kepler's 8-byte shared-memory bank mode, halving the
//!   instruction stream and doubling bytes per transaction. Applicable
//!   when `N >= 64` (the paper's rule).
//!
//! Functional semantics live in `memcnn_tensor::relayout`; these specs are
//! scored by the simulator to reproduce Fig 10/11.

use memcnn_gpusim::{
    AddressSpace, BankMode, BlockTrace, DeviceBuffer, KernelSpec, LaunchConfig, WorkSummary,
};
use memcnn_tensor::{Layout, Shape};

/// Which transformation kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransformImpl {
    /// Fig 7a: naive 4D-hierarchy transpose.
    Naive,
    /// Fig 7b without vectorization: flatten + shared-memory 32x32 tiles.
    Opt1,
    /// Fig 7b with `float2` vectorization (requires `N >= 64`).
    Opt2,
}

/// A layout-transformation kernel between `CHWN` and `NCHW` (either
/// direction — the pair flattens to a 2D transpose).
#[derive(Clone, Debug)]
pub struct TransformKernel {
    imp: TransformImpl,
    /// Flattened source rows.
    rows: usize,
    /// Flattened source cols (the source's innermost dimension).
    cols: usize,
    /// Whether the batch dimension (the vectorizable one) is the source's
    /// innermost (`CHWN -> NCHW`) or the destination's (`NCHW -> CHWN`).
    n_is_src_inner: bool,
    src: DeviceBuffer,
    dst: DeviceBuffer,
}

/// Batch-size threshold for the vectorized kernel (§IV.C: "applied when N
/// is larger than or equal to 64").
pub const VECTORIZE_MIN_N: usize = 64;

impl TransformKernel {
    /// Build a transformation kernel for `shape` moving from `from` to
    /// `to`. Panics unless the pair is a flattenable 2D transpose (the
    /// `CHWN <-> NCHW` family) and, for `Opt2`, unless `N >= 64`.
    pub fn new(shape: Shape, from: Layout, to: Layout, imp: TransformImpl) -> TransformKernel {
        assert!(
            from.is_2d_transpose_of(&to),
            "transform kernels handle flattenable layout pairs, got {from} -> {to}"
        );
        let n_is_src_inner = from.innermost() == memcnn_tensor::Dim::N;
        let n = shape.extent(memcnn_tensor::Dim::N);
        let chw = shape.len() / n;
        let (rows, cols) = if n_is_src_inner { (chw, n) } else { (n, chw) };
        if imp == TransformImpl::Opt2 {
            assert!(n >= VECTORIZE_MIN_N, "Opt2 requires N >= {VECTORIZE_MIN_N}, got {n}");
        }
        let mut asp = AddressSpace::new();
        let src = asp.alloc_f32(shape.len() as u64);
        let dst = asp.alloc_f32(shape.len() as u64);
        TransformKernel { imp, rows, cols, n_is_src_inner, src, dst }
    }

    /// Elements moved.
    pub fn elems(&self) -> usize {
        self.rows * self.cols
    }

    /// Scratch memory the transformation needs beyond the source tensor
    /// (the destination buffer — the paper's "less than 3%" §VI.A overhead
    /// argument counts this and frees it after the transform).
    pub fn scratch_bytes(&self) -> u64 {
        self.dst.bytes
    }

    fn trace_naive(&self, block: u64, t: &mut BlockTrace) {
        // Grid: rows x ceil(cols/256); 256 threads walking the source row.
        let col_blocks = self.cols.div_ceil(256) as u64;
        let row = (block / col_blocks) as usize;
        let c0 = ((block % col_blocks) * 256) as usize;
        let mut addrs = Vec::with_capacity(32);
        for w in 0..8usize {
            let base = c0 + w * 32;
            if base >= self.cols {
                break;
            }
            let lanes = 32.min(self.cols - base);
            addrs.clear();
            for lane in 0..lanes {
                addrs.push(self.src.f32((row * self.cols + base + lane) as u64));
            }
            t.global_load(&addrs, 4);
            // dst[col][row]: stride = rows elements — uncoalesced.
            addrs.clear();
            for lane in 0..lanes {
                addrs.push(self.dst.f32(((base + lane) * self.rows + row) as u64));
            }
            t.global_store(&addrs, 4);
            t.aux(4);
        }
    }

    fn tile_grid(&self, tile_r: usize, tile_c: usize) -> (usize, usize) {
        (self.rows.div_ceil(tile_r), self.cols.div_ceil(tile_c))
    }

    fn trace_opt1(&self, block: u64, t: &mut BlockTrace) {
        let (_, grid_c) = self.tile_grid(32, 32);
        let tr = (block as usize / grid_c) * 32;
        let tc = (block as usize % grid_c) * 32;
        let rows_here = 32.min(self.rows - tr);
        let cols_here = 32.min(self.cols - tc);
        let mut addrs = Vec::with_capacity(32);
        // Load 32 source rows (coalesced along cols), store into the padded
        // 33-wide shared tile.
        for r in 0..rows_here {
            addrs.clear();
            for lane in 0..cols_here {
                addrs.push(self.src.f32(((tr + r) * self.cols + tc + lane) as u64));
            }
            t.global_load(&addrs, 4);
            let sh: Vec<u64> = (0..cols_here as u64).map(|l| (r as u64 * 33 + l) * 4).collect();
            t.shared(&sh, 4);
        }
        t.sync();
        // Read the tile transposed (padding keeps it conflict-free) and
        // write destination rows coalesced.
        for c in 0..cols_here {
            let sh: Vec<u64> = (0..rows_here as u64).map(|l| (l * 33 + c as u64) * 4).collect();
            t.shared(&sh, 4);
            addrs.clear();
            for lane in 0..rows_here {
                addrs.push(self.dst.f32(((tc + c) * self.rows + tr + lane) as u64));
            }
            t.global_store(&addrs, 4);
        }
        t.aux(16);
        t.sync();
    }

    fn trace_opt2(&self, block: u64, t: &mut BlockTrace) {
        // The float2 dimension is the batch: tiles are 64 wide on the N
        // side, 32 on the CHW side.
        let (tile_r, tile_c) =
            if self.n_is_src_inner { (32usize, 64usize) } else { (64usize, 32usize) };
        let (_, grid_c) = self.tile_grid(tile_r, tile_c);
        let tr = (block as usize / grid_c) * tile_r;
        let tc = (block as usize % grid_c) * tile_c;
        let rows_here = tile_r.min(self.rows - tr);
        let cols_here = tile_c.min(self.cols - tc);
        let mut addrs = Vec::with_capacity(32);
        if self.n_is_src_inner {
            // CHWN -> NCHW: float2 loads along N (64 floats per warp).
            for r in 0..rows_here {
                addrs.clear();
                for lane in 0..cols_here.div_ceil(2).min(32) {
                    addrs.push(self.src.f32(((tr + r) * self.cols + tc + lane * 2) as u64));
                }
                t.global_load(&addrs, 8);
                let sh: Vec<u64> =
                    (0..addrs.len() as u64).map(|l| (r as u64 * 33 + l) * 8).collect();
                t.shared(&sh, 8);
            }
            t.sync();
            // Scatter: each float2 column writes two consecutive
            // destination rows as coalesced float stores (Fig 7b, 16-24).
            for c in 0..cols_here {
                let sh: Vec<u64> = (0..rows_here as u64)
                    .map(|l| (l * 33 + c as u64 / 2) * 8 + (c as u64 % 2) * 4)
                    .collect();
                t.shared(&sh, 8);
                addrs.clear();
                for lane in 0..rows_here {
                    addrs.push(self.dst.f32(((tc + c) * self.rows + tr + lane) as u64));
                }
                t.global_store(&addrs, 4);
            }
        } else {
            // NCHW -> CHWN: float loads along CHW, float2 stores along N.
            for r in 0..rows_here {
                addrs.clear();
                for lane in 0..cols_here.min(32) {
                    addrs.push(self.src.f32(((tr + r) * self.cols + tc + lane) as u64));
                }
                t.global_load(&addrs, 4);
                let sh: Vec<u64> =
                    (0..addrs.len() as u64).map(|l| (r as u64 * 33 + l) * 4).collect();
                t.shared(&sh, 4);
            }
            t.sync();
            for c in 0..cols_here {
                let sh: Vec<u64> =
                    (0..rows_here.div_ceil(2) as u64).map(|l| (l * 33 + c as u64) * 8).collect();
                t.shared(&sh, 8);
                addrs.clear();
                for lane in 0..rows_here.div_ceil(2).min(32) {
                    addrs.push(self.dst.f32(((tc + c) * self.rows + tr + lane * 2) as u64));
                }
                t.global_store(&addrs, 8);
            }
        }
        t.aux(16);
        t.sync();
    }
}

impl KernelSpec for TransformKernel {
    fn cache_key(&self) -> Option<String> {
        memcnn_gpusim::derived_cache_key(self)
    }

    fn name(&self) -> String {
        format!(
            "transform-{:?} {}x{}{}",
            self.imp,
            self.rows,
            self.cols,
            if self.n_is_src_inner { " (CHWN->NCHW)" } else { " (NCHW->CHWN)" }
        )
    }

    fn launch(&self) -> LaunchConfig {
        match self.imp {
            TransformImpl::Naive => LaunchConfig {
                grid_blocks: (self.rows * self.cols.div_ceil(256)) as u64,
                threads_per_block: 256,
                regs_per_thread: 12,
                smem_per_block: 0,
                bank_mode: BankMode::FourByte,
            },
            TransformImpl::Opt1 => {
                let (gr, gc) = self.tile_grid(32, 32);
                LaunchConfig {
                    grid_blocks: (gr * gc) as u64,
                    threads_per_block: 256,
                    regs_per_thread: 18,
                    smem_per_block: 32 * 33 * 4,
                    bank_mode: BankMode::FourByte,
                }
            }
            TransformImpl::Opt2 => {
                let (tile_r, tile_c) = if self.n_is_src_inner { (32, 64) } else { (64, 32) };
                let (gr, gc) = self.tile_grid(tile_r, tile_c);
                LaunchConfig {
                    grid_blocks: (gr * gc) as u64,
                    threads_per_block: 256,
                    regs_per_thread: 20,
                    smem_per_block: 32 * 33 * 8,
                    bank_mode: BankMode::EightByte,
                }
            }
        }
    }

    fn work(&self) -> WorkSummary {
        let bytes = 4.0 * self.elems() as f64;
        WorkSummary::new(bytes, bytes, self.src.bytes + self.dst.bytes).with_ilp(match self.imp {
            TransformImpl::Naive => 1.0,
            TransformImpl::Opt1 => 4.0,
            TransformImpl::Opt2 => 8.0,
        })
    }

    fn trace_block(&self, block: u64, t: &mut BlockTrace) {
        match self.imp {
            TransformImpl::Naive => self.trace_naive(block, t),
            TransformImpl::Opt1 => self.trace_opt1(block, t),
            TransformImpl::Opt2 => self.trace_opt2(block, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};

    fn cv2_input() -> Shape {
        // LeNet CONV2 input: 128 x 16 x 14 x 14.
        Shape::new(128, 16, 14, 14)
    }

    fn cv6_input() -> Shape {
        // ZFNet CONV6 input: 64 x 96 x 55 x 55 (the paper's 97.6% example).
        Shape::new(64, 96, 55, 55)
    }

    #[test]
    fn naive_writes_are_uncoalesced() {
        let d = DeviceConfig::titan_black();
        let k = TransformKernel::new(cv2_input(), Layout::CHWN, Layout::NCHW, TransformImpl::Naive);
        let r = simulate(&d, &k, &SimOptions::default()).unwrap();
        let overfetch = r.transaction_bytes / r.requested_bytes;
        assert!(overfetch > 3.0, "overfetch {overfetch}");
    }

    #[test]
    fn opt1_is_fully_coalesced_and_much_faster() {
        let d = DeviceConfig::titan_black();
        let shape = cv6_input();
        let naive = TransformKernel::new(shape, Layout::CHWN, Layout::NCHW, TransformImpl::Naive);
        let opt1 = TransformKernel::new(shape, Layout::CHWN, Layout::NCHW, TransformImpl::Opt1);
        let rn = simulate(&d, &naive, &SimOptions::default()).unwrap();
        let r1 = simulate(&d, &opt1, &SimOptions::default()).unwrap();
        let overfetch = r1.transaction_bytes / r1.requested_bytes;
        assert!(overfetch < 1.2, "opt1 overfetch {overfetch}");
        // Fig 11: ~6.5x average speedup from Opt1.
        assert!(
            r1.time() < rn.time() / 3.0,
            "naive {:.0}us vs opt1 {:.0}us",
            rn.time() * 1e6,
            r1.time() * 1e6
        );
    }

    #[test]
    fn opt2_outperforms_opt1_when_applicable() {
        let d = DeviceConfig::titan_black();
        let shape = cv6_input();
        let opt1 = TransformKernel::new(shape, Layout::CHWN, Layout::NCHW, TransformImpl::Opt1);
        let opt2 = TransformKernel::new(shape, Layout::CHWN, Layout::NCHW, TransformImpl::Opt2);
        let r1 = simulate(&d, &opt1, &SimOptions::default()).unwrap();
        let r2 = simulate(&d, &opt2, &SimOptions::default()).unwrap();
        assert!(
            r2.time() < r1.time(),
            "opt1 {:.0}us vs opt2 {:.0}us",
            r1.time() * 1e6,
            r2.time() * 1e6
        );
    }

    #[test]
    fn opt2_reaches_near_effective_bandwidth_on_cv6() {
        // §VI.A: "The optimized bandwidth for CONV6 has achieved
        // 229.5GB/S, which is 97.6% of the effective GPU memory bandwidth."
        let d = DeviceConfig::titan_black();
        let k = TransformKernel::new(cv6_input(), Layout::CHWN, Layout::NCHW, TransformImpl::Opt2);
        let r = simulate(&d, &k, &SimOptions::default()).unwrap();
        assert!(r.dram_gbs() > 0.75 * d.dram_bw / 1e9, "only {} GB/s", r.dram_gbs());
    }

    #[test]
    #[should_panic(expected = "Opt2 requires N >= 64")]
    fn opt2_rejects_small_batches() {
        // Fig 11: "Transform-Opt2 is not applicable for CV10, CV11, CV12
        // whose N is smaller than 64."
        TransformKernel::new(
            Shape::new(32, 128, 56, 56),
            Layout::CHWN,
            Layout::NCHW,
            TransformImpl::Opt2,
        );
    }

    #[test]
    fn reverse_direction_works_for_all_impls() {
        let d = DeviceConfig::titan_black();
        for imp in [TransformImpl::Naive, TransformImpl::Opt1, TransformImpl::Opt2] {
            let k = TransformKernel::new(cv2_input(), Layout::NCHW, Layout::CHWN, imp);
            let r = simulate(&d, &k, &SimOptions::default()).unwrap();
            assert!(r.time() > 0.0, "{imp:?}");
        }
    }

    #[test]
    #[should_panic(expected = "flattenable layout pairs")]
    fn non_transpose_pairs_are_rejected() {
        TransformKernel::new(cv2_input(), Layout::NCHW, Layout::NHWC, TransformImpl::Opt1);
    }

    #[test]
    fn scratch_is_one_tensor_copy() {
        let k = TransformKernel::new(cv2_input(), Layout::CHWN, Layout::NCHW, TransformImpl::Opt1);
        assert_eq!(k.scratch_bytes(), 4 * cv2_input().len() as u64);
    }

    #[test]
    fn edge_tiles_are_handled() {
        // 13x13 maps: CHW = 256*13*13 = 43264, not a multiple of 32.
        let d = DeviceConfig::titan_black();
        let shape = Shape::new(128, 256, 13, 13);
        for imp in [TransformImpl::Naive, TransformImpl::Opt1, TransformImpl::Opt2] {
            let k = TransformKernel::new(shape, Layout::CHWN, Layout::NCHW, imp);
            let r = simulate(&d, &k, &SimOptions::default()).unwrap();
            assert!(r.requested_bytes > 0.0, "{imp:?}");
        }
    }
}
