//! Cache-transparency properties: for arbitrary kernel specs, the memoized
//! simulation path must return reports bit-identical to a cold run, and
//! distinct specs must never share a cache key.
//!
//! `{:?}` comparison is exact: Rust's `f64` Debug rendering round-trips, so
//! two reports render identically iff every field is bit-identical.

use memcnn_gpusim::{simulate, DeviceConfig, KernelSpec, SimOptions};
use memcnn_kernels::conv::direct_chwn::DirectConvChwn;
use memcnn_kernels::pool::chwn::PoolChwn;
use memcnn_kernels::pool::nchw::{PoolNchwCaffe, PoolNchwCudnn};
use memcnn_kernels::transform::{TransformImpl, TransformKernel};
use memcnn_kernels::{ConvShape, PoolShape};
use memcnn_tensor::{Layout, Shape};
use proptest::prelude::*;

fn small_conv() -> impl Strategy<Value = ConvShape> {
    (1usize..4, 1usize..5, 5usize..10, 1usize..5, 1usize..4, 1usize..3, 0usize..3).prop_map(
        |(n, ci, h, co, f, s, pad)| {
            let f = f * 2 + 1;
            ConvShape { n, ci, h, w: h, co: co * 2, fh: f, fw: f, stride: s, pad }
        },
    )
}

/// Simulate `k` cold, then twice through the cache (a miss-and-fill followed
/// by a guaranteed hit), and require all three reports bit-identical.
fn assert_cache_transparent<K: KernelSpec>(k: &K) {
    let d = DeviceConfig::titan_black();
    let cold_opts = SimOptions { use_cache: false, ..SimOptions::default() };
    let warm_opts = SimOptions::default();
    let cold = simulate(&d, k, &cold_opts).unwrap();
    let warm = simulate(&d, k, &warm_opts).unwrap();
    let hit = simulate(&d, k, &warm_opts).unwrap();
    assert_eq!(format!("{cold:?}"), format!("{warm:?}"), "cold vs cache-fill");
    assert_eq!(format!("{warm:?}"), format!("{hit:?}"), "cache-fill vs hit");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conv, pooling, and transform specs all report bit-identically
    /// through the cache for arbitrary shapes.
    #[test]
    fn cached_reports_equal_cold_reports(shape in small_conv(), hw in 4usize..12, win in 2usize..4) {
        prop_assume!(shape.validate().is_ok());
        prop_assume!(win <= hw);
        assert_cache_transparent(&DirectConvChwn::new(shape));
        let p = PoolShape::table1(shape.n, hw, win, shape.ci, 2);
        assert_cache_transparent(&PoolNchwCaffe::new(p));
        assert_cache_transparent(&PoolChwn::new(p));
        let t = Shape::new(shape.n * 32, shape.ci, hw, hw);
        assert_cache_transparent(&TransformKernel::new(t, Layout::NCHW, Layout::CHWN, TransformImpl::Opt1));
    }

    /// Distinct specs get distinct cache keys: different shapes never
    /// collide, and neither do structurally identical specs of different
    /// types (the key embeds the type name).
    #[test]
    fn distinct_specs_never_share_a_key(a in small_conv(), b in small_conv()) {
        prop_assume!(a.validate().is_ok() && b.validate().is_ok());
        let ka = DirectConvChwn::new(a).cache_key().unwrap();
        let kb = DirectConvChwn::new(b).cache_key().unwrap();
        prop_assert_eq!(a == b, ka == kb, "key equality must track spec equality");
        // Same construction twice -> same key (addresses are
        // per-construction, bump-allocated from a fixed origin).
        prop_assert_eq!(&ka, &DirectConvChwn::new(a).cache_key().unwrap());
        // Same shape, different kernel type -> different key.
        let p = PoolShape::table1(a.n, a.h, 2, a.ci, 2);
        let caffe = PoolNchwCaffe::new(p).cache_key().unwrap();
        let cudnn = PoolNchwCudnn::new(p).cache_key().unwrap();
        prop_assert_ne!(caffe, cudnn);
    }
}
