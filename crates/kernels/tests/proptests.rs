//! Property-based tests for kernel semantics and model invariants.

use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};
use memcnn_kernels::conv::direct_chwn::direct_conv_chwn;
use memcnn_kernels::conv::{conv_forward, conv_reference};
use memcnn_kernels::im2col::{col2im, im2col};
use memcnn_kernels::pool::{pool_backward_avg, pool_forward, PoolOp};
use memcnn_kernels::softmax::{softmax_forward, softmax_xent_backward};
use memcnn_kernels::transform::{TransformImpl, TransformKernel};
use memcnn_kernels::{ConvShape, PoolShape, SoftmaxShape};
use memcnn_tensor::{Layout, Shape, Tensor};
use proptest::prelude::*;

fn small_conv() -> impl Strategy<Value = ConvShape> {
    (1usize..4, 1usize..5, 5usize..10, 1usize..5, 1usize..4, 1usize..3, 0usize..3).prop_map(
        |(n, ci, h, co, f, s, pad)| {
            let f = f * 2 + 1; // 3 or 5 or 7
            ConvShape { n, ci, h, w: h, co: co * 2, fh: f, fw: f, stride: s, pad }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fast conv (im2col+GEMM) equals the naive reference for arbitrary
    /// small shapes, strides, and padding.
    #[test]
    fn conv_forward_matches_reference(shape in small_conv(), seed in 0u64..500) {
        prop_assume!(shape.validate().is_ok());
        let input = Tensor::random(shape.input_shape(), Layout::NCHW, seed);
        let filter = Tensor::random(shape.filter_shape(), Layout::NCHW, seed + 1);
        let fast = conv_forward(&input, &filter, &shape, Layout::NCHW).unwrap();
        let slow = conv_reference(&input, &filter, &shape, Layout::NCHW).unwrap();
        prop_assert!(fast.approx_eq(&slow, 1e-3));
    }

    /// Direct CHWN conv equals the reference too (pad-0 path used by the
    /// Table 1 layers, plus padded cases).
    #[test]
    fn direct_chwn_matches_reference(shape in small_conv(), seed in 0u64..500) {
        prop_assume!(shape.validate().is_ok());
        let input = Tensor::random(shape.input_shape(), Layout::CHWN, seed);
        let filter = Tensor::random(shape.filter_shape(), Layout::NCHW, seed + 2);
        let got = direct_conv_chwn(&input, &filter, &shape);
        let want = conv_reference(&input, &filter, &shape, Layout::CHWN).unwrap();
        prop_assert!(got.approx_eq(&want, 1e-3));
    }

    /// Convolution is linear in the input: conv(a*x) == a*conv(x).
    #[test]
    fn conv_is_linear(seed in 0u64..500, scale in 0.25f32..4.0) {
        let shape = ConvShape::table1(2, 4, 8, 3, 2, 1);
        let input = Tensor::random(shape.input_shape(), Layout::NCHW, seed);
        let filter = Tensor::random(shape.filter_shape(), Layout::NCHW, seed + 3);
        let base = conv_forward(&input, &filter, &shape, Layout::NCHW).unwrap();
        let mut scaled_in = input.clone();
        for v in scaled_in.as_mut_slice() {
            *v *= scale;
        }
        let scaled = conv_forward(&scaled_in, &filter, &shape, Layout::NCHW).unwrap();
        for ((_, a), (_, b)) in base.iter_logical().zip(scaled.iter_logical()) {
            prop_assert!((a * scale - b).abs() < 1e-2 * (1.0 + a.abs() * scale));
        }
    }

    /// <col2im(c), x> == <c, im2col(x)> — the adjoint property backward
    /// passes rely on.
    #[test]
    fn im2col_col2im_adjoint(seed in 0u64..500) {
        let shape = ConvShape { pad: 1, ..ConvShape::table1(2, 1, 6, 3, 2, 2) };
        let x = Tensor::random(shape.input_shape(), Layout::NCHW, seed);
        let cx = im2col(&x, &shape);
        let c: Vec<f32> = (0..cx.len()).map(|i| ((i * 31 + seed as usize) % 7) as f32 - 3.0).collect();
        let lhs: f64 = col2im(&c, &shape)
            .iter_logical()
            .zip(x.iter_logical())
            .map(|((_, a), (_, b))| a as f64 * b as f64)
            .sum();
        let rhs: f64 = c.iter().zip(&cx).map(|(&a, &b)| a as f64 * b as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// Max pooling of a constant tensor is that constant; avg pooling too
    /// (including clamped ceil-mode edges).
    #[test]
    fn pooling_preserves_constants(
        hw in 4usize..12,
        win in 2usize..4,
        stride in 1usize..3,
        ceil in prop::bool::ANY,
        value in -5f32..5.0,
    ) {
        prop_assume!(win <= hw);
        let s = PoolShape::table1(2, hw, win, 3, stride).with_ceil_mode(ceil);
        let input = Tensor::full(s.input_shape(), Layout::NCHW, value);
        for op in [PoolOp::Max, PoolOp::Avg] {
            let out = pool_forward(&input, &s, op, Layout::NCHW);
            for (_, v) in out.iter_logical() {
                prop_assert!((v - value).abs() < 1e-5);
            }
        }
    }

    /// Max pooling dominates avg pooling pointwise.
    #[test]
    fn max_dominates_avg(seed in 0u64..500) {
        let s = PoolShape::table1(2, 9, 3, 2, 2).with_ceil_mode(true);
        let input = Tensor::random(s.input_shape(), Layout::NCHW, seed);
        let mx = pool_forward(&input, &s, PoolOp::Max, Layout::NCHW);
        let av = pool_forward(&input, &s, PoolOp::Avg, Layout::NCHW);
        for ((_, m), (_, a)) in mx.iter_logical().zip(av.iter_logical()) {
            prop_assert!(m >= a - 1e-5);
        }
    }

    /// Avg-pool backward conserves gradient mass for any shape/mode.
    #[test]
    fn avg_backward_conserves_mass(
        hw in 4usize..10,
        win in 2usize..4,
        stride in 1usize..3,
        ceil in prop::bool::ANY,
        seed in 0u64..500,
    ) {
        prop_assume!(win <= hw);
        let s = PoolShape::table1(1, hw, win, 2, stride).with_ceil_mode(ceil);
        let g = Tensor::random(s.output_shape(), Layout::NCHW, seed);
        let gi = pool_backward_avg(&g, &s, Layout::NCHW);
        let in_mass: f64 = gi.iter_logical().map(|(_, v)| v as f64).sum();
        let out_mass: f64 = g.iter_logical().map(|(_, v)| v as f64).sum();
        prop_assert!((in_mass - out_mass).abs() < 1e-3 * (1.0 + out_mass.abs()));
    }

    /// Softmax rows sum to 1, are translation invariant, and order-preserve
    /// the logits.
    #[test]
    fn softmax_properties(batch in 1usize..5, cats in 2usize..20, seed in 0u64..500) {
        let shape = SoftmaxShape::new(batch, cats);
        let t = Tensor::random(Shape::new(1, 1, batch, cats), Layout::NCHW, seed);
        let input = t.as_slice().to_vec();
        let probs = softmax_forward(&input, shape);
        for (row_in, row_out) in input.chunks(cats).zip(probs.chunks(cats)) {
            let sum: f32 = row_out.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            // Larger logit -> larger probability.
            for i in 0..cats {
                for j in 0..cats {
                    if row_in[i] > row_in[j] {
                        prop_assert!(row_out[i] >= row_out[j] - 1e-6);
                    }
                }
            }
        }
        // Translation invariance.
        let shifted: Vec<f32> = input.iter().map(|v| v + 100.0).collect();
        let probs2 = softmax_forward(&shifted, shape);
        for (a, b) in probs.iter().zip(&probs2) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Cross-entropy gradient rows sum to zero.
    #[test]
    fn xent_gradient_rows_sum_to_zero(batch in 1usize..4, cats in 2usize..10, seed in 0u64..500) {
        let shape = SoftmaxShape::new(batch, cats);
        let t = Tensor::random(Shape::new(1, 1, batch, cats), Layout::NCHW, seed);
        let labels: Vec<usize> = (0..batch).map(|i| (i + seed as usize) % cats).collect();
        let grad = softmax_xent_backward(t.as_slice(), &labels, shape);
        for row in grad.chunks(cats) {
            let sum: f32 = row.iter().sum();
            prop_assert!(sum.abs() < 1e-4);
        }
    }

    /// Transformation kernels move exactly the tensor (requested bytes ==
    /// 2 x payload) for every variant and both directions.
    #[test]
    fn transform_specs_move_exactly_the_tensor(
        n_pow in 5usize..9,
        c in 1usize..8,
        hw in 3usize..12,
        reverse in prop::bool::ANY,
    ) {
        let shape = Shape::new(1 << n_pow, c, hw, hw);
        let (from, to) = if reverse {
            (Layout::NCHW, Layout::CHWN)
        } else {
            (Layout::CHWN, Layout::NCHW)
        };
        let d = DeviceConfig::titan_black();
        // Trace every block (no sampling) so the byte count is exact.
        let opts = SimOptions { max_sampled_blocks: 1 << 20, ..Default::default() };
        for imp in [TransformImpl::Naive, TransformImpl::Opt1, TransformImpl::Opt2] {
            if imp == TransformImpl::Opt2 && shape.n < 64 {
                continue;
            }
            let k = TransformKernel::new(shape, from, to, imp);
            let r = simulate(&d, &k, &opts).unwrap();
            let payload = 2.0 * shape.len() as f64 * 4.0;
            let ratio = r.requested_bytes / payload;
            prop_assert!((ratio - 1.0).abs() < 1e-6, "{imp:?}: ratio {ratio}");
        }
    }
}
