//! Device-failure integration tests: bit-identical failover replay
//! across thread counts and across the sequential/parallel fleet
//! paths, the zero-rate no-op equivalence, the extended accounting
//! balance invariant (`admitted == completed + shed + rejected +
//! in_flight + failed_over_in_transit`), total-fleet-loss survival,
//! and the `MEMCNN_HEALTH_DISABLE` oracle.
//!
//! Like `tests/fleet.rs`, this binary reads process-global state (the
//! perf registry, the once-locked `MEMCNN_THREADS`, and the per-call
//! `MEMCNN_HEALTH_DISABLE` / `MEMCNN_FLEET_SEQUENTIAL` knobs), so
//! everything lives in ONE `#[test]`.

use memcnn::core::{Engine, LayoutPolicy, LayoutThresholds, NetworkBuilder};
use memcnn::gpusim::{DeviceConfig, DeviceFaultPlan};
use memcnn::serve::{
    serve_fleet, Arrival, BatchPolicy, FleetConfig, FleetReport, Phase, Placement, TenantSpec,
    WorkloadConfig,
};
use memcnn::tensor::Shape;

fn black() -> Engine {
    Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
        .with_layout_policy(LayoutPolicy::Heuristic)
}

/// Replay-relevant bits of a fleet report under device faults:
/// latencies, placements, shed total, and the whole health block.
fn digest(r: &FleetReport) -> (Vec<u64>, Vec<u32>, usize, String) {
    let health = r.health.as_ref().expect("fault-enabled run must carry a health report");
    (
        r.latencies.iter().map(|l| l.to_bits()).collect(),
        r.placements.clone(),
        r.shed_requests,
        serde_json::to_string(health).unwrap(),
    )
}

/// Field-wise equality of everything except the config echo (which
/// legitimately differs when one config carries a no-op fault plan).
fn assert_same_schedule(a: &FleetReport, b: &FleetReport, what: &str) {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(&a.latencies), bits(&b.latencies), "{what}: latencies diverged");
    assert_eq!(a.placements, b.placements, "{what}: placements diverged");
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "{what}: makespan diverged");
    assert_eq!(a.shed_requests, b.shed_requests, "{what}: shed totals diverged");
    assert_eq!(
        serde_json::to_string(&a.devices).unwrap(),
        serde_json::to_string(&b.devices).unwrap(),
        "{what}: device reports diverged"
    );
    assert_eq!(
        serde_json::to_string(&a.faults).unwrap(),
        serde_json::to_string(&b.faults).unwrap(),
        "{what}: fault stats diverged"
    );
    assert_eq!(
        serde_json::to_string(&a.timeline).unwrap(),
        serde_json::to_string(&b.timeline).unwrap(),
        "{what}: timelines diverged"
    );
}

#[test]
fn device_failover_is_deterministic_balanced_and_lossless() {
    // Must precede every engine call in this process (once-locked).
    std::env::set_var("MEMCNN_THREADS", "4");
    std::env::remove_var("MEMCNN_FLEET_SEQUENTIAL");
    std::env::remove_var("MEMCNN_HEALTH_DISABLE");

    let net = NetworkBuilder::new("failover-net", Shape::new(1, 64, 8, 8))
        .conv("CV1", 64, 3, 1, 1)
        .max_pool("PL1", 2, 2)
        .build()
        .unwrap();
    let wl = WorkloadConfig {
        phases: vec![Phase { arrival: Arrival::Poisson { rate: 3000.0 }, duration: 0.25 }],
        images_min: 1,
        images_max: 8,
        seed: 91,
    };
    let tenants =
        vec![TenantSpec::interactive("chat", 0.05, 2.0), TenantSpec::best_effort("offline", 1.0)];
    let policy = BatchPolicy::new(64, 0.004);
    // A mid-run hang, crash, and planned drain, plus a seeded
    // background drain rate; short repair + warmup so dead devices heal
    // and serve again inside the 0.25 s stream.
    let faults = DeviceFaultPlan::new(7, 0.0, 0.0, 0.3)
        .with_repair(0.03)
        .with_warmup(0.01)
        .hang_at(0.05, 3)
        .crash_at(0.1, 1)
        .drain_at(0.15, 2);
    let cfg = FleetConfig::new(wl.clone(), policy, Placement::LeastLoaded)
        .with_tenants(tenants.clone())
        .with_device_faults(faults.clone());

    let shared = black();
    let engines: Vec<&Engine> = vec![&shared, &shared, &shared, &shared];
    let nets = std::slice::from_ref(&net);

    // (1) Bit-identical failover replay across MEMCNN_THREADS re-sets
    // {1, 13, 4} (nominal after the once-locked first read; the
    // cross-process matrix lives in CI).
    let report = serve_fleet(&engines, nets, &cfg).unwrap();
    let base = digest(&report);
    for threads in ["1", "13", "4"] {
        std::env::set_var("MEMCNN_THREADS", threads);
        let rerun = digest(&serve_fleet(&engines, nets, &cfg).unwrap());
        assert_eq!(base, rerun, "failover run diverged after re-setting MEMCNN_THREADS={threads}");
    }

    // (2) Sequential-vs-parallel byte-identity holds WITH device
    // faults: the legacy loop must reproduce the whole report —
    // including the health block — byte for byte.
    std::env::set_var("MEMCNN_FLEET_SEQUENTIAL", "1");
    let seq = serve_fleet(&engines, nets, &cfg).unwrap();
    std::env::remove_var("MEMCNN_FLEET_SEQUENTIAL");
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&seq).unwrap(),
        "sequential and parallel failover reports must be byte-identical"
    );

    // (3) The fault plan actually fired and the fleet recovered: every
    // down device healed, failed-over work was re-placed, and the
    // per-device counts add up to the fleet total.
    let health = report.health.as_ref().unwrap();
    assert!(health.downs >= 3, "the scheduled hang, crash, and drain must all fire");
    assert!(health.ups >= 1, "short repair + warmup heals inside the stream");
    assert!(health.ups <= health.downs, "a device cannot heal without going down first");
    assert!(health.failed_over > 0, "the mid-run crash must fail over queued work");
    assert_eq!(
        health.device_failed_over.iter().sum::<u64>(),
        health.failed_over,
        "per-device failover counts must add up to the fleet total"
    );
    assert_eq!(
        health.requeued + health.transit_shed,
        health.failed_over,
        "every failed-over request is re-placed or shed"
    );
    assert!(health.warm_compiles > 0, "healing resets warm plan caches cold");

    // (4) Extended balance: per tenant and in aggregate, with the
    // transit residual zero on a drained run — nothing is lost
    // silently. The 0.0-latency sentinels are exactly the rejected
    // plus shed requests.
    let slo = report.slo.as_ref().unwrap();
    assert!(slo.balanced(), "aggregate accounting out of balance under device faults");
    assert_eq!(slo.failed_over_in_transit, 0, "a drained run leaves nothing in transit");
    assert_eq!(health.failed_over_in_transit, 0);
    for t in &slo.tenants {
        assert!(t.balanced(), "tenant {} out of balance under device faults", t.name);
        assert_eq!(t.in_flight, 0, "a drained run leaves nothing in flight");
        assert_eq!(t.failed_over_in_transit, 0);
    }
    assert_eq!(slo.failed_over, health.failed_over, "slo and health failover tallies agree");
    assert_eq!(
        report.latencies.iter().filter(|&&l| l == 0.0).count() as u64,
        slo.rejected + report.shed_requests as u64,
        "0.0 latency sentinels are the rejected plus shed requests"
    );
    assert!(slo.device_seconds > 0.0, "busy devices must accrue device-seconds");
    assert!(slo.cost().is_finite() && slo.cost() >= 0.0, "slo.cost must be finite");

    // (5) A zero-rate, unscheduled plan is a byte-identical no-op: the
    // run must replay the plan-free schedule field for field (only the
    // config echo differs) and must not fabricate a health report.
    let plain_cfg =
        FleetConfig::new(wl.clone(), policy, Placement::LeastLoaded).with_tenants(tenants.clone());
    let noop_cfg = plain_cfg.clone().with_device_faults(DeviceFaultPlan::new(7, 0.0, 0.0, 0.0));
    let plain = serve_fleet(&engines, nets, &plain_cfg).unwrap();
    let noop = serve_fleet(&engines, nets, &noop_cfg).unwrap();
    assert!(noop.health.is_none(), "a no-op plan must not fabricate a health report");
    assert_same_schedule(&plain, &noop, "zero-rate no-op plan");
    let plain_json = serde_json::to_string(&plain).unwrap();
    for key in ["\"health\"", "\"device_faults\""] {
        assert!(!plain_json.contains(key), "default-config report leaked new key {key}");
    }

    // (6) MEMCNN_HEALTH_DISABLE=1 is the no-op oracle for a *live*
    // plan: with the knob set, the fault-carrying config must replay
    // the plan-free schedule too.
    std::env::set_var("MEMCNN_HEALTH_DISABLE", "1");
    let disabled = serve_fleet(&engines, nets, &cfg).unwrap();
    std::env::remove_var("MEMCNN_HEALTH_DISABLE");
    assert!(disabled.health.is_none(), "a disabled run must not fabricate a health report");
    assert_same_schedule(&plain, &disabled, "MEMCNN_HEALTH_DISABLE oracle");

    // (7) Crash K-1 devices at t = 0: the survivor carries the whole
    // stream (with the deadline ladder shedding what it must) and the
    // run still returns Ok with the books balanced.
    let apocalypse = DeviceFaultPlan::new(11, 0.0, 0.0, 0.0)
        .with_repair(10.0) // longer than the stream: no heal
        .crash_at(0.0, 1)
        .crash_at(0.0, 2)
        .crash_at(0.0, 3);
    let acfg = FleetConfig::new(wl, policy, Placement::LeastLoaded)
        .with_tenants(tenants)
        .with_device_faults(apocalypse);
    let survived = serve_fleet(&engines, nets, &acfg).unwrap();
    let ah = survived.health.as_ref().unwrap();
    assert_eq!(ah.downs, 3, "all three scheduled crashes fire");
    assert_eq!(ah.ups, 0, "repair outlasts the stream: nobody heals");
    let aslo = survived.slo.as_ref().unwrap();
    assert!(aslo.balanced(), "accounting out of balance after losing K-1 devices");
    assert_eq!(aslo.failed_over_in_transit, 0);
    for t in &aslo.tenants {
        assert!(t.balanced(), "tenant {} out of balance after losing K-1 devices", t.name);
        assert_eq!(t.in_flight, 0, "everything is served or shed, nothing stranded");
    }
    assert!(
        survived.placements.iter().filter(|&&p| p != u32::MAX).all(|&p| p == 0)
            || survived.shed_requests > 0,
        "post-crash placements land on the survivor"
    );
}
