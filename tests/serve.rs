//! Serving-subsystem integration tests: bit-identical determinism of the
//! dynamic batcher, and the paper's batch-size-dependent layout decisions
//! surfacing across serving buckets.
//!
//! Like `sim_cache.rs`, these assertions read process-global state (the
//! perf-counter registry and the env-configured thread count), so
//! everything lives in ONE `#[test]` — a second test in this binary would
//! race the counters on the harness's concurrent threads.

use memcnn::core::{Engine, LayoutPolicy, LayoutThresholds, Mechanism, NetworkBuilder};
use memcnn::gpusim::DeviceConfig;
use memcnn::serve::{serve, Arrival, BatchPolicy, FaultPolicy, Phase, ServeConfig, WorkloadConfig};
use memcnn::tensor::{Layout, Shape};
use memcnn::trace::perf;

/// Digest of everything the ISSUE requires to be reproducible: the full
/// latency vector (bit-for-bit), every batch's bucket decision, and every
/// bucket's compiled conv-layout signature.
fn digest(report: &memcnn::serve::ServeReport) -> (Vec<u64>, Vec<(usize, usize)>, Vec<String>) {
    (
        report.latencies.iter().map(|l| l.to_bits()).collect(),
        report.batches.iter().map(|b| (b.bucket, b.images)).collect(),
        report.buckets.iter().map(|b| format!("{}:{}", b.bucket, b.conv_layouts)).collect(),
    )
}

#[test]
fn serving_is_deterministic_and_plans_flip_layouts_across_buckets() {
    // A conv layer with C=64 sits exactly in the heuristic's batch-
    // sensitive band on Titan Black (Ct=32, Nt=128): C >= Ct, so the
    // layout is CHWN iff N >= 128. Small spatial dims keep planning cheap
    // even at N=256.
    let net = NetworkBuilder::new("serve-it", Shape::new(1, 64, 8, 8))
        .conv("CV1", 64, 3, 1, 1)
        .max_pool("PL1", 2, 2)
        .build()
        .unwrap();
    let engine = || {
        Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
            .with_layout_policy(LayoutPolicy::Heuristic)
    };

    // A two-phase workload — a quiet spell, then a burst — so one run
    // naturally produces both part-full and full batches.
    let cfg = ServeConfig {
        workload: WorkloadConfig {
            phases: vec![
                Phase { arrival: Arrival::Poisson { rate: 50.0 }, duration: 0.3 },
                Phase { arrival: Arrival::Poisson { rate: 4000.0 }, duration: 0.3 },
            ],
            images_min: 1,
            images_max: 8,
            seed: 1234,
        },
        policy: BatchPolicy::new(256, 0.004),
        mechanism: Mechanism::Opt,
        faults: None,
        fault_policy: FaultPolicy::default(),
        tenants: Vec::new(),
    };

    // (1) Determinism across runs and across MEMCNN_THREADS: the report —
    // latency histogram, bucket decisions, compiled plans — must be
    // bit-identical however the planner's probe fan-out is parallelized.
    // (Safe to set here: one test per binary, see module docs.)
    std::env::set_var("MEMCNN_THREADS", "1");
    let base = digest(&serve(&engine(), &net, &cfg).unwrap());
    for threads in ["4", "13"] {
        std::env::set_var("MEMCNN_THREADS", threads);
        let rerun = digest(&serve(&engine(), &net, &cfg).unwrap());
        assert_eq!(base, rerun, "serving diverged at MEMCNN_THREADS={threads}");
    }
    // And a different seed actually changes the stream (the determinism
    // above is not vacuous).
    let mut other = cfg.clone();
    other.workload.seed = 4321;
    assert_ne!(base.0, digest(&serve(&engine(), &net, &other).unwrap()).0);

    // (2) The layout flip: the quiet phase forms small batches (N < 128
    // buckets planning NCHW), the burst fills 128/256-image buckets
    // (planning CHWN), per the heuristic. Both kinds must appear in ONE
    // run's plan cache, with the flip at exactly Nt.
    let report = serve(&engine(), &net, &cfg).unwrap();
    let mut small = 0;
    let mut large = 0;
    for b in &report.buckets {
        let expect = if b.bucket >= 128 { Layout::CHWN } else { Layout::NCHW };
        assert_eq!(
            b.conv_layouts,
            expect.name(),
            "bucket {} planned the wrong conv layout",
            b.bucket
        );
        if b.bucket >= 128 {
            large += b.batches;
        } else {
            small += b.batches;
        }
    }
    assert!(small > 0, "workload never exercised a small (NCHW) bucket");
    assert!(large > 0, "workload never exercised a large (CHWN) bucket");
    assert!(report.distinct_conv_signatures() >= 2);

    // (3) Plan-cache discipline: the layout DP ran once per distinct
    // bucket, and every repeated bucket was served from the cache.
    let compiles0 = perf::get("engine.plan.compile");
    let (hits0, misses0) = (perf::get("serve.plan.hit"), perf::get("serve.plan.miss"));
    let report = serve(&engine(), &net, &cfg).unwrap();
    let compiled = perf::get("engine.plan.compile") - compiles0;
    let hits = perf::get("serve.plan.hit") - hits0;
    let misses = perf::get("serve.plan.miss") - misses0;
    assert_eq!(compiled, report.buckets.len() as u64, "one layout-DP compile per bucket");
    assert_eq!(misses, compiled, "every miss compiles exactly once");
    assert_eq!(hits + misses, report.batches.len() as u64, "every batch consults the plan cache");
    assert!(hits > 0, "repeat buckets must hit the plan cache");
}
