//! Multi-tenant SLO integration tests: bit-identical per-tenant
//! scheduling across thread counts and across the sequential/parallel
//! fleet paths, the per-tenant accounting balance invariant, exact
//! zero-tenant byte-identity with the pre-tenant report wire format,
//! the `MEMCNN_SLO_DISABLE` class-blind equivalence oracle, and the
//! weighted-fair bound on best-effort starvation.
//!
//! Like `tests/fleet.rs`, this binary reads process-global state (the
//! perf registry, the once-locked `MEMCNN_THREADS`, and the per-call
//! `MEMCNN_SLO_DISABLE` / `MEMCNN_FLEET_SEQUENTIAL` knobs), so
//! everything lives in ONE `#[test]`.

use memcnn::core::{Engine, LayoutPolicy, LayoutThresholds, NetworkBuilder};
use memcnn::gpusim::DeviceConfig;
use memcnn::serve::{
    serve, serve_fleet, Arrival, BatchPolicy, FleetConfig, FleetReport, Phase, Placement,
    ServeConfig, TenantSpec, WorkloadConfig,
};
use memcnn::tensor::Shape;

/// One tenant's accounting row: admitted, rejected, completed, shed,
/// in-flight, violations, and the p99 bits.
type TenantRow = (u64, u64, u64, u64, u64, u64, u64);

/// Replay-relevant bits of a fleet report plus the per-tenant rollup:
/// latencies, placements, batch timelines, and each tenant's full
/// accounting row (counts are exact; latency quantiles ride along as
/// bits).
fn digest(r: &FleetReport) -> (Vec<u64>, Vec<u32>, Vec<TenantRow>) {
    let slo = r.slo.as_ref().expect("tenant-enabled run must carry an SLO report");
    (
        r.latencies.iter().map(|l| l.to_bits()).collect(),
        r.placements.clone(),
        slo.tenants
            .iter()
            .map(|t| {
                (
                    t.admitted,
                    t.rejected,
                    t.completed,
                    t.shed,
                    t.in_flight,
                    t.violations,
                    t.latency.p99.to_bits(),
                )
            })
            .collect(),
    )
}

fn black() -> Engine {
    Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
        .with_layout_policy(LayoutPolicy::Heuristic)
}

#[test]
fn slo_scheduling_is_deterministic_balanced_and_fair() {
    // Must precede every engine call in this process (once-locked).
    std::env::set_var("MEMCNN_THREADS", "4");
    std::env::remove_var("MEMCNN_SLO_DISABLE");
    std::env::remove_var("MEMCNN_FLEET_SEQUENTIAL");

    let net = NetworkBuilder::new("slo-net", Shape::new(1, 64, 8, 8))
        .conv("CV1", 64, 3, 1, 1)
        .max_pool("PL1", 2, 2)
        .build()
        .unwrap();
    let wl = WorkloadConfig {
        phases: vec![
            Phase { arrival: Arrival::Poisson { rate: 100.0 }, duration: 0.2 },
            Phase { arrival: Arrival::Poisson { rate: 4000.0 }, duration: 0.1 },
        ],
        images_min: 1,
        images_max: 8,
        seed: 77,
    };
    let tenants = vec![
        TenantSpec::interactive("chat", 0.01, 2.0),
        TenantSpec::standard("search", 1.0),
        TenantSpec::best_effort("offline", 1.0),
    ];
    let policy = BatchPolicy::new(128, 0.004);
    let cfg =
        FleetConfig::new(wl.clone(), policy, Placement::LeastLoaded).with_tenants(tenants.clone());

    // (1) Tenant-enabled 2-device fleet: bit-identical digests across
    // MEMCNN_THREADS re-sets {1, 13, 4} (nominal after the once-locked
    // first read; the cross-process matrix lives in CI).
    let shared = black();
    let engines: Vec<&Engine> = vec![&shared, &shared];
    let base = digest(&serve_fleet(&engines, std::slice::from_ref(&net), &cfg).unwrap());
    for threads in ["1", "13", "4"] {
        std::env::set_var("MEMCNN_THREADS", threads);
        let rerun = digest(&serve_fleet(&engines, std::slice::from_ref(&net), &cfg).unwrap());
        assert_eq!(base, rerun, "SLO fleet diverged after re-setting MEMCNN_THREADS={threads}");
    }

    // (2) Per-tenant AND aggregate accounting balance, attribution
    // totals, and the starvation bound: the weighted-fair deficit
    // tiebreak must keep the best-effort tenant serving through the
    // saturating burst, not just the interactive one.
    let report = serve_fleet(&engines, std::slice::from_ref(&net), &cfg).unwrap();
    let slo = report.slo.as_ref().unwrap();
    assert!(slo.balanced(), "per-tenant accounting out of balance");
    assert_eq!(slo.tenants.len(), 3);
    let admitted: u64 = slo.tenants.iter().map(|t| t.admitted).sum();
    assert_eq!(admitted, report.requests as u64, "every request is attributed to one tenant");
    for t in &slo.tenants {
        assert!(t.balanced(), "tenant {} out of balance", t.name);
        assert!(t.admitted > 0, "tenant {} never drew an arrival", t.name);
        assert_eq!(t.in_flight, 0, "a drained run leaves nothing in flight");
    }
    assert!(
        slo.tenants[2].completed > 0,
        "best-effort must not starve under the interactive burst"
    );
    let fairness = &slo.fairness;
    assert!(
        fairness.share_min > 0.0 && fairness.ratio >= 1.0,
        "fairness shares must be positive with a bounded max/min ratio"
    );

    // (3) Admission control: a hard rate cap on the interactive tenant
    // rejects the overflow, marks it with the u32::MAX placement
    // sentinel + 0.0 latency, and the books still balance.
    let capped = vec![
        TenantSpec::interactive("chat", 0.01, 2.0).with_rate_limit(50.0),
        TenantSpec::standard("search", 1.0),
        TenantSpec::best_effort("offline", 1.0),
    ];
    let rcfg = FleetConfig::new(wl.clone(), policy, Placement::LeastLoaded).with_tenants(capped);
    let limited = serve_fleet(&engines, std::slice::from_ref(&net), &rcfg).unwrap();
    let lslo = limited.slo.as_ref().unwrap();
    assert!(lslo.rejected > 0, "the 50 rps cap must reject under a 4000 rps burst");
    assert_eq!(lslo.rejected, lslo.tenants[0].rejected, "only the capped tenant rejects");
    assert!(lslo.balanced());
    assert_eq!(
        limited.placements.iter().filter(|&&p| p == u32::MAX).count() as u64,
        lslo.rejected,
        "placement sentinels must be exactly the rejected requests"
    );
    assert_eq!(
        limited.latencies.iter().filter(|&&l| l == 0.0).count() as u64,
        lslo.rejected + limited.shed_requests as u64,
        "0.0 latency sentinels are the rejected plus shed requests"
    );

    // (4) Sequential-vs-parallel byte-identity holds WITH tenants: the
    // legacy loop must reproduce the whole report — including the slo
    // block and the per-tenant keyed histograms — byte for byte.
    std::env::set_var("MEMCNN_FLEET_SEQUENTIAL", "1");
    let seq = serve_fleet(&engines, std::slice::from_ref(&net), &cfg).unwrap();
    std::env::remove_var("MEMCNN_FLEET_SEQUENTIAL");
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&seq).unwrap(),
        "sequential and parallel SLO reports must be byte-identical"
    );

    // (5) MEMCNN_SLO_DISABLE=1 is the class-blind equivalence oracle:
    // with the knob set, a tenant-carrying config must replay the
    // no-tenant schedule bit for bit (only the config echo differs).
    let blind_cfg = FleetConfig::new(wl.clone(), policy, Placement::LeastLoaded);
    let blind = serve_fleet(&engines, std::slice::from_ref(&net), &blind_cfg).unwrap();
    std::env::set_var("MEMCNN_SLO_DISABLE", "1");
    let disabled = serve_fleet(&engines, std::slice::from_ref(&net), &cfg).unwrap();
    std::env::remove_var("MEMCNN_SLO_DISABLE");
    assert!(disabled.slo.is_none(), "a disabled run must not fabricate an SLO report");
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(&blind.latencies), bits(&disabled.latencies), "oracle latencies diverged");
    assert_eq!(blind.placements, disabled.placements, "oracle placements diverged");
    assert_eq!(
        serde_json::to_string(&blind.timeline).unwrap(),
        serde_json::to_string(&disabled.timeline).unwrap(),
        "oracle timelines diverged"
    );

    // (6) Zero-tenant byte-identity with the pre-tenant wire format:
    // the default config emits none of the new keys, so its JSON is
    // exactly what the previous revision serialized.
    let plain_json = serde_json::to_string(&blind).unwrap();
    for key in ["\"tenants\"", "\"slo\"", "\"keyed_hists\""] {
        assert!(!plain_json.contains(key), "default-config report leaked new key {key}");
    }
    let scfg = ServeConfig::new(wl.clone(), policy);
    let s_json = serde_json::to_string(&serve(&black(), &net, &scfg).unwrap()).unwrap();
    for key in ["\"tenants\"", "\"slo\"", "\"keyed_hists\""] {
        assert!(!s_json.contains(key), "default-config serve report leaked new key {key}");
    }

    // (7) Single-device tenant path agrees with a K = 1 fleet, field
    // for field on the per-tenant books (the same lanes arithmetic runs
    // under both drivers).
    std::env::set_var("MEMCNN_THREADS", "4");
    let stcfg = ServeConfig::new(wl, policy).with_tenants(tenants);
    let single = serve(&black(), &net, &stcfg).unwrap();
    let k1 = serve_fleet(&[&black()], std::slice::from_ref(&net), &cfg).unwrap();
    let sslo = single.slo.as_ref().expect("tenant-enabled serve must carry an SLO report");
    let fslo = k1.slo.as_ref().unwrap();
    assert_eq!(bits(&single.latencies), bits(&k1.latencies), "K=1 SLO latencies diverged");
    for (a, b) in sslo.tenants.iter().zip(&fslo.tenants) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
    }
    assert_eq!(sslo.early_commits, fslo.early_commits);
    assert_eq!(sslo.preemptions, fslo.preemptions);
}
