//! Fleet-serving integration tests: bit-identical determinism across
//! thread counts, exact K = 1 equivalence with the single-device server,
//! balanced per-device and aggregate fault accounting, and load-aware
//! placement actually spreading a heterogeneous fleet.
//!
//! Like `tests/serve.rs`, this binary reads process-global state (the
//! perf registry and the once-locked `MEMCNN_THREADS`), so everything
//! lives in ONE `#[test]`. The env var is set to 4 FIRST — before any
//! engine call — so the fleet's plan compiles exercise the parallel
//! probe fan-out (and its per-worker trace merge path) rather than the
//! single-threaded fallback.

use memcnn::core::{Engine, LayoutPolicy, LayoutThresholds, NetworkBuilder};
use memcnn::gpusim::{DeviceConfig, FaultPlan};
use memcnn::serve::{
    serve, serve_fleet, Arrival, BatchPolicy, FaultPolicy, FleetConfig, FleetReport, Phase,
    Placement, ServeConfig, WorkloadConfig,
};
use memcnn::tensor::Shape;

/// One batch's replay-relevant bits: (launch, done, bucket, network).
type BatchBits = (u64, u64, usize, u32);

/// Digest of everything the ISSUE requires to replay bit-identically:
/// the full latency vector, every placement decision, and every
/// device's batch timeline (launch/done bits, bucket, network).
fn digest(r: &FleetReport) -> (Vec<u64>, Vec<u32>, Vec<Vec<BatchBits>>) {
    (
        r.latencies.iter().map(|l| l.to_bits()).collect(),
        r.placements.clone(),
        r.devices
            .iter()
            .map(|d| {
                d.batches
                    .iter()
                    .map(|b| {
                        (
                            b.record.launch.to_bits(),
                            b.record.done.to_bits(),
                            b.record.bucket,
                            b.network,
                        )
                    })
                    .collect()
            })
            .collect(),
    )
}

fn black() -> Engine {
    Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
        .with_layout_policy(LayoutPolicy::Heuristic)
}

fn titan_x() -> Engine {
    Engine::new(DeviceConfig::titan_x(), LayoutThresholds::titan_x_paper())
        .with_layout_policy(LayoutPolicy::Heuristic)
}

#[test]
fn fleet_is_deterministic_exact_at_k1_and_balanced_under_faults() {
    // Must precede every engine call in this process: the thread count
    // is read once and cached, so this binary runs its fan-outs at 4.
    std::env::set_var("MEMCNN_THREADS", "4");

    let net_a = NetworkBuilder::new("fleet-a", Shape::new(1, 64, 8, 8))
        .conv("CV1", 64, 3, 1, 1)
        .max_pool("PL1", 2, 2)
        .build()
        .unwrap();
    let net_b = NetworkBuilder::new("fleet-b", Shape::new(1, 32, 8, 8))
        .conv("CV1", 48, 3, 1, 1)
        .build()
        .unwrap();
    let nets = [net_a.clone(), net_b.clone()];

    // A quiet spell then a hard burst: the burst forces queueing, which
    // is what makes placement observable.
    let wl = WorkloadConfig {
        phases: vec![
            Phase { arrival: Arrival::Poisson { rate: 100.0 }, duration: 0.2 },
            Phase { arrival: Arrival::Poisson { rate: 4000.0 }, duration: 0.1 },
        ],
        images_min: 1,
        images_max: 8,
        seed: 77,
    };
    let cfg = FleetConfig::new(wl.clone(), BatchPolicy::new(128, 0.004), Placement::LeastLoaded);

    // (1) Heterogeneous 2-device, 2-network fleet is bit-deterministic
    // across runs; re-setting MEMCNN_THREADS is nominal after the first
    // read, so these reruns double as same-process replay checks.
    let base = digest(&serve_fleet(&[&black(), &titan_x()], &nets, &cfg).unwrap());
    for threads in ["1", "13"] {
        std::env::set_var("MEMCNN_THREADS", threads);
        let rerun = digest(&serve_fleet(&[&black(), &titan_x()], &nets, &cfg).unwrap());
        assert_eq!(base, rerun, "fleet diverged after re-setting MEMCNN_THREADS={threads}");
    }
    let hetero = serve_fleet(&[&black(), &titan_x()], &nets, &cfg).unwrap();
    assert_eq!(hetero.placements.len(), hetero.requests);
    assert!(hetero.placements.iter().all(|&p| p < 2), "placement out of range");
    assert!(
        hetero.devices.iter().all(|d| !d.batches.is_empty()),
        "least-loaded must spread the burst across both devices"
    );
    assert_eq!(hetero.devices.iter().map(|d| d.requests).sum::<usize>(), hetero.requests);
    // Both networks multiplex through the fleet.
    for n in [0u32, 1u32] {
        assert!(
            hetero.devices.iter().any(|d| d.batches.iter().any(|b| b.network == n)),
            "network {n} never served"
        );
    }
    // Per-device batches never overlap on that device.
    for dev in &hetero.devices {
        for w in dev.batches.windows(2) {
            assert!(w[0].record.done <= w[1].record.launch + 1e-12);
        }
    }

    // (2) K = 1, one network: the fleet IS the single-device server,
    // field for field, bit for bit.
    let policy = BatchPolicy::new(128, 0.004);
    let scfg = ServeConfig::new(wl.clone(), policy);
    let fcfg = FleetConfig::new(wl.clone(), policy, Placement::RoundRobin);
    let s = serve(&black(), &net_a, &scfg).unwrap();
    let f = serve_fleet(&[&black()], std::slice::from_ref(&net_a), &fcfg).unwrap();
    assert_eq!(s.requests, f.requests);
    assert_eq!(s.shed_requests, f.shed_requests);
    assert_eq!(s.makespan.to_bits(), f.makespan.to_bits());
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(&s.latencies), bits(&f.latencies), "K=1 latencies diverged from serve()");
    let dev = &f.devices[0];
    assert_eq!(s.batches.len(), dev.batches.len());
    for (a, b) in s.batches.iter().zip(&dev.batches) {
        assert_eq!(a.launch.to_bits(), b.record.launch.to_bits());
        assert_eq!(a.done.to_bits(), b.record.done.to_bits());
        assert_eq!(a.requests, b.record.requests);
        assert_eq!(a.images, b.record.images);
        assert_eq!(a.bucket, b.record.bucket);
        assert_eq!(a.queue_depth, b.record.queue_depth);
        assert_eq!(a.attempts, b.record.attempts);
        assert_eq!(a.throttled, b.record.throttled);
        assert_eq!(b.network, 0);
    }
    assert_eq!(dev.networks.len(), 1);
    assert_eq!(s.buckets.len(), dev.networks[0].buckets.len());
    for (a, b) in s.buckets.iter().zip(&dev.networks[0].buckets) {
        assert_eq!(a.bucket, b.bucket);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.images, b.images);
        assert_eq!(a.fill.to_bits(), b.fill.to_bits());
        assert_eq!(a.conv_layouts, b.conv_layouts);
        assert_eq!(a.transforms, b.transforms);
        assert_eq!(a.service_time.to_bits(), b.service_time.to_bits());
    }
    assert_eq!(s.faults, f.faults);
    assert_eq!(s.images, f.images());

    // (3) Injected faults: accounting balances per device AND in the
    // fleet aggregate (which must be exactly the per-device sum).
    let fpol = FaultPolicy { max_retries: 2, shed_deadline: Some(0.02), ..FaultPolicy::default() };
    let faulted = serve_fleet(
        &[&black(), &titan_x()],
        &nets,
        &cfg.clone().with_faults(FaultPlan::new(33, 0.15, 0.05, 0.15), fpol),
    )
    .unwrap();
    let mut injected = 0u64;
    let mut handled = 0u64;
    for dev in &faulted.devices {
        assert!(
            dev.faults.balanced(),
            "device {} fault accounting out of balance: {:?}",
            dev.device,
            dev.faults
        );
        injected += dev.faults.injected;
        handled += dev.faults.retried + dev.faults.degraded + dev.faults.shed;
    }
    assert!(injected > 0, "the fault plan must actually inject at these rates");
    assert_eq!(faulted.faults.injected, injected, "aggregate != per-device sum");
    assert_eq!(faulted.faults.injected, handled, "fleet-wide injected != retried+degraded+shed");
    assert!(faulted.faults.balanced());
    // Latency sentinels agree with the shed count.
    assert_eq!(
        faulted.latencies.iter().filter(|&&l| l == 0.0).count(),
        faulted.shed_requests,
        "0.0 sentinels must be exactly the shed requests"
    );
    assert_eq!(
        faulted.devices.iter().map(|d| d.shed_requests).sum::<usize>(),
        faulted.shed_requests
    );

    // (4) K = 8 digest equality across MEMCNN_THREADS re-sets {1, 4, 13}
    // (nominal after the once-locked first read — the real cross-process
    // thread matrix lives in the fleet bench and CI). A homogeneous
    // 8-device fleet shares one engine, so the parallel path's barrier
    // batch-compile dedups shared (network, bucket) misses.
    std::env::set_var("MEMCNN_THREADS", "4");
    let shared = black();
    let eights: Vec<&Engine> = std::iter::repeat_n(&shared, 8).collect();
    let k8_base = digest(&serve_fleet(&eights, &nets, &cfg).unwrap());
    for threads in ["1", "13", "4"] {
        std::env::set_var("MEMCNN_THREADS", threads);
        let rerun = digest(&serve_fleet(&eights, &nets, &cfg).unwrap());
        assert_eq!(k8_base, rerun, "K=8 fleet diverged after re-setting MEMCNN_THREADS={threads}");
    }

    // (5) Sequential-vs-parallel byte-identity: the retained legacy loop
    // (MEMCNN_FLEET_SEQUENTIAL=1) must reproduce the parallel path's
    // *entire* report — config echo, latencies, batch records, fault
    // counters, and the metrics timeline — byte for byte (serde_json
    // prints f64s shortest-roundtrip, so equal strings == equal bits).
    // Every serve_fleet call cold-starts its plan caches, so comparing
    // serve.plan.hit/miss deltas between the two runs is exactly the
    // cold-start check: batched barrier compilation must leave the same
    // miss-then-hit discipline (and, via the report's per-network bucket
    // rollups inside the JSON, the same PlanCache contents) as compiling
    // serially on first launch.
    let before_par = memcnn::trace::perf::baseline();
    let par = serve_fleet(&eights, &nets, &cfg).unwrap();
    let par_hits = before_par.delta_of("serve.plan.hit");
    let par_misses = before_par.delta_of("serve.plan.miss");
    assert!(
        before_par.delta_of("fleet.barrier.count") > 0,
        "the parallel path must count routing barriers"
    );
    assert!(
        before_par.delta_of("fleet.step.parallel") > 0,
        "an 8-device burst must step devices concurrently"
    );
    assert!(
        before_par.delta_of("fleet.plan.batch_compile") > 0,
        "cold buckets at a barrier must batch-compile"
    );
    std::env::set_var("MEMCNN_FLEET_SEQUENTIAL", "1");
    let before_seq = memcnn::trace::perf::baseline();
    let seq = serve_fleet(&eights, &nets, &cfg).unwrap();
    assert_eq!(par_hits, before_seq.delta_of("serve.plan.hit"), "plan-cache hits diverged");
    assert_eq!(par_misses, before_seq.delta_of("serve.plan.miss"), "plan-cache misses diverged");
    assert_eq!(
        before_seq.delta_of("fleet.plan.batch_compile"),
        0,
        "the sequential loop must not batch-compile"
    );
    assert_eq!(
        serde_json::to_string(&par).unwrap(),
        serde_json::to_string(&seq).unwrap(),
        "sequential and parallel fleet reports must be byte-identical"
    );

    // (6) A malformed knob value warns (once, on stderr) and falls back
    // to the parallel path — same digest, no crash.
    std::env::set_var("MEMCNN_FLEET_SEQUENTIAL", "definitely");
    let fallback = serve_fleet(&eights, &nets, &cfg).unwrap();
    assert_eq!(
        serde_json::to_string(&par).unwrap(),
        serde_json::to_string(&fallback).unwrap(),
        "malformed MEMCNN_FLEET_SEQUENTIAL must fall back to the (identical) parallel path"
    );
    std::env::remove_var("MEMCNN_FLEET_SEQUENTIAL");

    // (7) Route-index equivalence at K = 8 (an existing <=16-device
    // scenario): MEMCNN_FLEET_LINEAR=1 retains the pre-index linear
    // global-best scan and lane-walking load snapshots, and its *entire*
    // report — latencies, placements, batch records, metrics timeline —
    // must match the indexed router's byte for byte. (Debug builds also
    // cross-check every indexed selection against the scan inline.)
    std::env::set_var("MEMCNN_FLEET_LINEAR", "1");
    let lin = serve_fleet(&eights, &nets, &cfg).unwrap();
    assert_eq!(
        serde_json::to_string(&par).unwrap(),
        serde_json::to_string(&lin).unwrap(),
        "linear-scan and indexed-router fleet reports must be byte-identical"
    );
    // Malformed values warn once and keep the indexed router.
    std::env::set_var("MEMCNN_FLEET_LINEAR", "sorta");
    let lin_fallback = serve_fleet(&eights, &nets, &cfg).unwrap();
    assert_eq!(
        serde_json::to_string(&par).unwrap(),
        serde_json::to_string(&lin_fallback).unwrap(),
        "malformed MEMCNN_FLEET_LINEAR must fall back to the (identical) indexed router"
    );
    std::env::remove_var("MEMCNN_FLEET_LINEAR");

    // (8) K = 64 digest matrix: thread re-sets {1, 13, 4}, the
    // sequential oracle, and the linear router must all reproduce the
    // same digest — the index maintains 64 tentative-launch keys
    // incrementally without perturbing a single selection.
    std::env::set_var("MEMCNN_THREADS", "4");
    let sixty_four: Vec<&Engine> = std::iter::repeat_n(&shared, 64).collect();
    let k64_base = digest(&serve_fleet(&sixty_four, &nets, &cfg).unwrap());
    for threads in ["1", "13", "4"] {
        std::env::set_var("MEMCNN_THREADS", threads);
        let rerun = digest(&serve_fleet(&sixty_four, &nets, &cfg).unwrap());
        assert_eq!(
            k64_base, rerun,
            "K=64 fleet diverged after re-setting MEMCNN_THREADS={threads}"
        );
    }
    std::env::set_var("MEMCNN_FLEET_SEQUENTIAL", "1");
    let k64_seq = digest(&serve_fleet(&sixty_four, &nets, &cfg).unwrap());
    assert_eq!(k64_base, k64_seq, "K=64 sequential oracle diverged from the parallel path");
    std::env::remove_var("MEMCNN_FLEET_SEQUENTIAL");
    std::env::set_var("MEMCNN_FLEET_LINEAR", "1");
    let k64_lin = digest(&serve_fleet(&sixty_four, &nets, &cfg).unwrap());
    assert_eq!(k64_base, k64_lin, "K=64 linear scan diverged from the indexed router");
    std::env::remove_var("MEMCNN_FLEET_LINEAR");
}
