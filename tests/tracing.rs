//! Integration tests for the tracing pipeline against the real engine:
//! the exported JSON is valid and timeline-consistent, the captured
//! spans account for exactly the engine's reported time, and disabled
//! instrumentation is a true no-op (zero events, identical timings).

use memcnn::core::Mechanism;
use memcnn::trace::{self, export, Track};
use memcnn_bench::util::Ctx;

/// Run one traced simulation and return (report, trace).
fn traced_forward(
    ctx: &Ctx,
    net: &memcnn::core::Network,
    mech: Mechanism,
) -> (memcnn::core::NetworkReport, trace::Trace) {
    trace::start();
    let result = ctx.engine.simulate_network(net, mech);
    let captured = trace::finish().expect("collector was started");
    (result.expect("simulation succeeds"), captured)
}

#[test]
fn chrome_trace_is_valid_json_with_ordered_tracks() {
    let ctx = Ctx::titan_black();
    let net = memcnn::models::cifar10().unwrap();
    let (_, captured) = traced_forward(&ctx, &net, Mechanism::Opt);
    let json = export::chrome_trace(&captured);

    let doc = serde_json::from_str(&json).expect("exporter emits valid JSON");
    let events =
        doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array").clone();
    assert!(!events.is_empty());

    // Per-(pid, tid) track, "X" spans must be monotonic and non-overlapping.
    let mut tracks: std::collections::BTreeMap<(u64, u64), Vec<(f64, f64)>> = Default::default();
    for ev in &events {
        let obj = ev.as_object().expect("event object");
        if obj.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        let key = (obj["pid"].as_u64().expect("pid"), obj["tid"].as_u64().expect("tid"));
        let ts = obj["ts"].as_f64().expect("ts");
        let dur = obj["dur"].as_f64().expect("dur");
        assert!(ts >= 0.0 && dur >= 0.0, "negative ts/dur in {key:?}");
        tracks.entry(key).or_default().push((ts, dur));
    }
    assert!(!tracks.is_empty());
    for (key, spans) in &tracks {
        for w in spans.windows(2) {
            let (a_ts, a_dur) = w[0];
            let (b_ts, _) = w[1];
            assert!(
                a_ts + a_dur <= b_ts + 1e-6,
                "track {key:?}: span at {a_ts}+{a_dur} overlaps next at {b_ts}"
            );
        }
    }
}

#[test]
fn forward_timeline_matches_the_report_exactly() {
    let ctx = Ctx::titan_black();
    let net = memcnn::models::cifar10().unwrap();
    for mech in [Mechanism::Opt, Mechanism::CudnnMm, Mechanism::Caffe] {
        let (report, captured) = traced_forward(&ctx, &net, mech);
        let total_ms = report.total_time() * 1e3;
        let diff = (captured.timeline_total_ms() - total_ms).abs();
        assert!(
            diff <= 1e-9 * total_ms.max(1.0),
            "{mech:?}: trace says {} ms, report says {} ms",
            captured.timeline_total_ms(),
            total_ms
        );
        // One layer span per reported layer, in the same order.
        let layer_spans: Vec<&str> = captured
            .spans
            .iter()
            .filter(|sp| sp.track == Track::Layers)
            .map(|sp| sp.name.as_str())
            .collect();
        let report_layers: Vec<&str> = report.layers.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(layer_spans, report_layers, "{mech:?}");
    }
}

#[test]
fn training_timeline_matches_the_report_exactly() {
    let ctx = Ctx::titan_black();
    let net = memcnn::models::cifar10().unwrap();
    trace::start();
    let report = ctx.engine.simulate_network_training(&net, Mechanism::Opt).unwrap();
    let captured = trace::finish().unwrap();
    let total_ms = report.total_time() * 1e3;
    let diff = (captured.timeline_total_ms() - total_ms).abs();
    assert!(
        diff <= 1e-9 * total_ms.max(1.0),
        "trace says {} ms, training report says {} ms",
        captured.timeline_total_ms(),
        total_ms
    );
    // The backward track is populated and starts after the forward pass.
    let bwd: Vec<_> = captured.spans.iter().filter(|sp| sp.track == Track::Backward).collect();
    assert!(!bwd.is_empty());
    let forward_end_us: f64 = captured
        .spans
        .iter()
        .filter(|sp| sp.track == Track::Layers || sp.track == Track::Transforms)
        .map(|sp| {
            if sp.args.iter().any(|(k, v)| k == "phase" && v == "backward") {
                0.0
            } else {
                sp.dur_us
            }
        })
        .sum();
    for sp in &bwd {
        assert!(
            sp.ts_us >= forward_end_us - 1e-6,
            "backward span {} at {} us precedes forward end {} us",
            sp.name,
            sp.ts_us,
            forward_end_us
        );
    }
}

#[test]
fn disabled_instrumentation_captures_nothing_and_changes_nothing() {
    let ctx = Ctx::titan_black();
    let net = memcnn::models::cifar10().unwrap();

    // Untraced run: the thread-local collector is inactive.
    let untraced = ctx.engine.simulate_network(&net, Mechanism::Opt).unwrap();
    // Nothing leaked into a collector started afterwards.
    trace::start();
    let empty = trace::finish().unwrap();
    assert_eq!(empty.event_count(), 0, "untraced run must record nothing");

    // Tracing must not perturb the simulated timings at all.
    let (traced, _) = traced_forward(&ctx, &net, Mechanism::Opt);
    assert_eq!(untraced.total_time(), traced.total_time());
    assert_eq!(untraced.layers.len(), traced.layers.len());
    for (a, b) in untraced.layers.iter().zip(&traced.layers) {
        assert_eq!(a.time, b.time, "layer {}", a.name);
        assert_eq!(a.transform_before, b.transform_before, "layer {}", a.name);
        assert_eq!(a.layout, b.layout, "layer {}", a.name);
    }
}

#[test]
fn text_profile_reports_every_layer_and_decision() {
    let ctx = Ctx::titan_black();
    let net = memcnn::models::cifar10().unwrap();
    let (report, captured) = traced_forward(&ctx, &net, Mechanism::Opt);
    let text = export::text_profile(&captured, 5);
    for layer in &report.layers {
        assert!(text.contains(&layer.name), "profile misses {}", layer.name);
    }
    assert!(text.contains("== layout decisions =="));
    assert!(!captured.decisions.is_empty());
}
