//! Chaos-suite integration tests: deterministic replay of injected fault
//! timelines, the zero-fault no-op guarantee, typed retry exhaustion, and
//! the counter-discipline invariant.
//!
//! Like `serve.rs` and `sim_cache.rs`, these assertions read
//! process-global state (the perf-counter registry and the env-configured
//! thread count), so everything lives in ONE `#[test]` — a second test in
//! this binary would race the counters on the harness's concurrent
//! threads.

use memcnn::core::{
    with_retries, Engine, EngineError, LayoutThresholds, Mechanism, NetworkBuilder,
};
use memcnn::gpusim::{DeviceConfig, Fault, FaultPlan};
use memcnn::serve::{
    serve, Arrival, BatchPolicy, FaultPolicy, Phase, ServeConfig, ServeReport, WorkloadConfig,
};
use memcnn::tensor::Shape;
use memcnn::trace::perf;

/// Everything the ISSUE requires a chaos run to reproduce bit-for-bit:
/// the full latency vector, every batch's (bucket, images, attempts,
/// throttled) tuple, the shed count, and the complete fault accounting.
#[allow(clippy::type_complexity)]
fn digest(r: &ServeReport) -> (Vec<u64>, Vec<(usize, usize, u32, u32)>, usize, String) {
    (
        r.latencies.iter().map(|l| l.to_bits()).collect(),
        r.batches.iter().map(|b| (b.bucket, b.images, b.attempts, b.throttled)).collect(),
        r.shed_requests,
        format!("{:?}", r.faults),
    )
}

#[test]
fn fault_timelines_replay_bit_identically_and_every_fault_is_accounted() {
    let net = NetworkBuilder::new("chaos-it", Shape::new(1, 64, 8, 8))
        .conv("CV1", 64, 3, 1, 1)
        .max_pool("PL1", 2, 2)
        .build()
        .unwrap();
    let engine = || Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper());
    let workload = WorkloadConfig {
        phases: vec![
            Phase { arrival: Arrival::Poisson { rate: 50.0 }, duration: 0.3 },
            Phase { arrival: Arrival::Poisson { rate: 4000.0 }, duration: 0.3 },
        ],
        images_min: 1,
        images_max: 8,
        seed: 1234,
    };
    let clean_cfg = ServeConfig {
        workload,
        policy: BatchPolicy::new(256, 0.004),
        mechanism: Mechanism::Opt,
        faults: None,
        fault_policy: FaultPolicy::default(),
        tenants: Vec::new(),
    };
    // A plan hot enough to exercise every ladder rung: retries, OOM
    // downshifts, throttles, and (at burst depth) shedding.
    let faulty_cfg = ServeConfig {
        faults: Some(FaultPlan::new(42, 0.05, 0.01, 0.02)),
        fault_policy: FaultPolicy {
            max_retries: 2,
            shed_deadline: Some(0.25),
            recovery_batches: 3,
            ..FaultPolicy::default()
        },
        ..clean_cfg.clone()
    };

    // (1) Bit-identical fault timelines across runs and MEMCNN_THREADS:
    // the fault stream keys on (launch key, launch index), never on
    // worker scheduling. (Safe to set here: one test per binary.)
    std::env::set_var("MEMCNN_THREADS", "1");
    let base = digest(&serve(&engine(), &net, &faulty_cfg).unwrap());
    for threads in ["4", "13"] {
        std::env::set_var("MEMCNN_THREADS", threads);
        let rerun = digest(&serve(&engine(), &net, &faulty_cfg).unwrap());
        assert_eq!(base, rerun, "fault timeline diverged at MEMCNN_THREADS={threads}");
    }
    // The injected run really did inject (the determinism is not vacuous)
    // and survived without a panic or terminal error.
    let faulted = serve(&engine(), &net, &faulty_cfg).unwrap();
    assert!(faulted.faults.injected > 0, "fault plan never fired");
    assert!(faulted.faults.retried > 0, "no transient was retried");
    // A different fault seed changes the timeline.
    let mut reseeded = faulty_cfg.clone();
    reseeded.faults = Some(FaultPlan::new(43, 0.05, 0.01, 0.02));
    assert_ne!(base, digest(&serve(&engine(), &net, &reseeded).unwrap()));

    // (2) Counter discipline: the report balances, and the global perf
    // mirror agrees with it exactly.
    assert!(
        faulted.faults.balanced(),
        "injected != retried + degraded + shed: {:?}",
        faulted.faults
    );
    let before = (
        perf::get("fault.injected"),
        perf::get("fault.retried"),
        perf::get("fault.degraded"),
        perf::get("fault.shed"),
        perf::get("serve.shed"),
    );
    let again = serve(&engine(), &net, &faulty_cfg).unwrap();
    assert_eq!(perf::get("fault.injected") - before.0, again.faults.injected);
    assert_eq!(perf::get("fault.retried") - before.1, again.faults.retried);
    assert_eq!(perf::get("fault.degraded") - before.2, again.faults.degraded);
    assert_eq!(perf::get("fault.shed") - before.3, again.faults.shed);
    assert_eq!(perf::get("serve.shed") - before.4, again.shed_requests as u64);

    // (3) A zero-rate FaultPlan is a byte-identical no-op against no plan
    // at all: the fault path must not even perturb float evaluation order.
    let clean = digest(&serve(&engine(), &net, &clean_cfg).unwrap());
    let mut quiet_cfg = clean_cfg.clone();
    quiet_cfg.faults = Some(FaultPlan::quiet(42));
    let quiet = digest(&serve(&engine(), &net, &quiet_cfg).unwrap());
    assert_eq!(clean, quiet, "zero-fault plan perturbed the run");
    let clean_report = serve(&engine(), &net, &clean_cfg).unwrap();
    assert_eq!(clean_report.faults.injected, 0);
    assert_eq!(clean_report.shed_requests, 0);

    // (4) Retry exhaustion surfaces a typed error, never a panic: both at
    // the `with_retries` combinator...
    let exhausted = with_retries(2, |attempt| -> Result<(), EngineError> {
        Err(EngineError::Transient {
            layer: "CV1".to_string(),
            launch: attempt as u64,
            fault: Fault::LaunchFailed,
        })
    })
    .unwrap_err();
    match exhausted {
        EngineError::RetriesExhausted { attempts, last } => {
            assert_eq!(attempts, 3);
            assert!(matches!(*last, EngineError::Transient { .. }));
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    // ...and through the server: with every launch failing, every request
    // is shed, the run still returns Ok, and the accounting still balances.
    let mut doomed_cfg = faulty_cfg.clone();
    doomed_cfg.faults = Some(FaultPlan::new(7, 1.0, 0.0, 0.0));
    let doomed = serve(&engine(), &net, &doomed_cfg).unwrap();
    assert_eq!(doomed.shed_requests, doomed.requests);
    assert!(doomed.batches.is_empty());
    assert!(doomed.faults.balanced());
    assert_eq!(doomed.latency().count, 0);
}
