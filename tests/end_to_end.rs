//! Cross-crate integration tests: networks run functionally, layout plans
//! preserve values, and the engine's choices are consistent with the
//! kernels it builds on.

use memcnn::core::exec::{assert_valid_probabilities, run_network};
use memcnn::core::{Engine, LayoutPolicy, LayoutThresholds, Mechanism, NetworkBuilder};
use memcnn::gpusim::DeviceConfig;
use memcnn::kernels::SoftmaxShape;
use memcnn::models::data::{cifar_batch, mnist_batch};
use memcnn::models::{all_networks, cifar10, lenet};
use memcnn::tensor::{Layout, Shape, Tensor};

fn engine() -> Engine {
    Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
}

#[test]
fn lenet_functional_forward_is_layout_invariant() {
    let net = lenet().unwrap();
    let batch = mnist_batch(net.input.n, 1);
    let n = net.layers().len();
    let nchw = run_network(&net, &batch.images, &vec![Layout::NCHW; n], 3).unwrap();
    let chwn = run_network(&net, &batch.images, &vec![Layout::CHWN; n], 3).unwrap();
    assert!(assert_valid_probabilities(&nchw, SoftmaxShape::new(net.input.n, 10), 1e-4));
    for (a, b) in nchw.iter().zip(&chwn) {
        assert!((a - b).abs() < 1e-3);
    }
}

#[test]
fn cifar_functional_forward_with_engine_layouts() {
    let net = cifar10().unwrap();
    let batch = cifar_batch(net.input.n, 2);
    let e = engine();
    let report = e.simulate_network(&net, Mechanism::Opt).unwrap();
    let layouts: Vec<Layout> = report
        .layers
        .iter()
        .map(|l| if l.layout == "CHWN" { Layout::CHWN } else { Layout::NCHW })
        .collect();
    let probs = run_network(&net, &batch.images, &layouts, 5).unwrap();
    assert!(assert_valid_probabilities(&probs, SoftmaxShape::new(net.input.n, 10), 1e-4));
}

/// Simulate one network under a mechanism set and assert Opt never loses
/// to any mechanism it subsumes. One `#[test]` per network (below) keeps
/// any failure localized to its network and lets the harness run the five
/// simulations on separate test threads.
fn simulate_under_mechanisms(name: &str) {
    let net = all_networks().into_iter().find(|n| n.name == name).expect("known network");
    let e = engine();
    // Keep the heavy nets to the three interesting mechanisms.
    let mechs: &[Mechanism] = if net.name == "LeNet" || net.name == "CIFAR" {
        &Mechanism::ALL
    } else {
        &[Mechanism::CudnnMm, Mechanism::CudaConvnet, Mechanism::Opt]
    };
    let mut times = Vec::new();
    for &m in mechs {
        let r = e.simulate_network(&net, m).unwrap();
        assert_eq!(r.layers.len(), net.layers().len(), "{} {m}", net.name);
        assert!(r.total_time() > 0.0);
        times.push((m, r.total_time()));
    }
    // Opt never loses to any mechanism it subsumes.
    let opt = times.iter().find(|(m, _)| *m == Mechanism::Opt).unwrap().1;
    for (m, t) in &times {
        assert!(opt <= t * 1.02, "{}: Opt ({opt:.2e}) should not lose to {m} ({t:.2e})", net.name);
    }
}

#[test]
fn lenet_simulates_under_all_mechanisms() {
    simulate_under_mechanisms("LeNet");
}

#[test]
fn cifar_simulates_under_all_mechanisms() {
    simulate_under_mechanisms("CIFAR");
}

#[test]
fn alexnet_simulates_under_core_mechanisms() {
    simulate_under_mechanisms("AlexNet");
}

#[test]
fn zfnet_simulates_under_core_mechanisms() {
    simulate_under_mechanisms("ZFNet");
}

#[test]
fn vgg16_simulates_under_core_mechanisms() {
    simulate_under_mechanisms("VGG");
}

#[test]
fn opt_reports_transform_placement_consistently() {
    // A network that genuinely mixes layouts: small batch, mixed channels.
    let e = engine();
    let net = NetworkBuilder::new("mixed", Shape::new(64, 3, 64, 64))
        .conv("cv1", 96, 5, 2, 0)
        .max_pool("pl1", 3, 2)
        .conv("cv2", 256, 3, 1, 1)
        .max_pool("pl2", 3, 2)
        .conv("cv3", 256, 3, 1, 1)
        .fc("fc", 100)
        .softmax("prob")
        .build()
        .unwrap();
    let r = e.simulate_network(&net, Mechanism::Opt).unwrap();
    // Transform times appear exactly at boundaries where the layout label
    // changes between consecutive layout-sensitive layers.
    let mut prev: Option<&str> = None;
    for l in &r.layers {
        if l.layout == "-" {
            continue;
        }
        match prev {
            Some(p) if p != l.layout => {
                assert!(l.transform_before > 0.0, "{} changed layout without transform", l.name)
            }
            Some(_) => {
                assert_eq!(l.transform_before, 0.0, "{} has phantom transform", l.name)
            }
            None => {}
        }
        prev = Some(&l.layout);
    }
}

#[test]
fn heuristic_and_profiled_policies_agree_on_uniform_nets() {
    let d = DeviceConfig::titan_black();
    let th = LayoutThresholds::titan_black_paper();
    let net = lenet().unwrap();
    let heuristic = Engine::new(d.clone(), th)
        .with_layout_policy(LayoutPolicy::Heuristic)
        .simulate_network(&net, Mechanism::Opt)
        .unwrap();
    let profiled = Engine::new(d, th)
        .with_layout_policy(LayoutPolicy::Profiled)
        .simulate_network(&net, Mechanism::Opt)
        .unwrap();
    for (a, b) in heuristic.layers.iter().zip(&profiled.layers) {
        assert_eq!(a.layout, b.layout, "layer {}", a.name);
    }
}

#[test]
fn functional_and_simulated_paths_share_shapes() {
    // The engine and the functional executor must agree on every layer's
    // tensor shapes (a drift here would invalidate the timing model).
    let net = cifar10().unwrap();
    let input = Tensor::random(net.input, Layout::NCHW, 11);
    let layouts = vec![Layout::NCHW; net.layers().len()];
    let out = run_network(&net, &input, &layouts, 13).unwrap();
    assert_eq!(out.len(), net.output().len());
}

#[test]
fn tensor_roundtrip_through_all_crates() {
    // tensor -> kernels (transform functional path) -> core exec types.
    let shape = Shape::new(64, 16, 9, 9);
    let t = Tensor::random(shape, Layout::NCHW, 21);
    let u = memcnn::tensor::relayout::relayout_2d_transpose(&t, Layout::CHWN);
    let back = u.to_layout(Layout::NCHW);
    assert_eq!(t.as_slice(), back.as_slice());
}

#[test]
fn training_step_costs_are_sane() {
    // §IV.D's "complete forward-backward profiling": backward adds roughly
    // 1-3x the forward time, the layout benefit survives into training,
    // and transformations are charged in both directions.
    let e = engine();
    let net = lenet().unwrap();
    let fwd = e.simulate_network(&net, Mechanism::Opt).unwrap();
    let train = e.simulate_network_training(&net, Mechanism::Opt).unwrap();
    assert_eq!(fwd.backward_time(), 0.0);
    assert!(train.backward_time() > 0.0);
    let ratio = train.backward_time() / fwd.total_time();
    assert!((0.5..4.0).contains(&ratio), "bwd/fwd {ratio:.2}");
    assert!((train.transform_time() - 2.0 * fwd.transform_time()).abs() < 1e-12);
    // Opt still beats cuDNN-MM when training.
    let mm_train = e.simulate_network_training(&net, Mechanism::CudnnMm).unwrap();
    assert!(train.total_time() < mm_train.total_time());
}
