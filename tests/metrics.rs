//! Metrics-timeline integration tests: histogram merge laws on real
//! serve latency vectors, bucket-resolution percentile accuracy,
//! monotonic Perfetto counter tracks, bit-identical timelines across
//! thread counts, and the queue-weighted convoy fix showing up in the
//! per-device queue series.
//!
//! Like `tests/serve.rs`, this binary reads process-global state (the
//! trace collector and the once-locked `MEMCNN_THREADS`), so everything
//! lives in ONE `#[test]`. The env var is set to 4 FIRST — before any
//! engine call — so plan compiles exercise the parallel probe fan-out.

use memcnn::core::{Engine, LayoutPolicy, LayoutThresholds, NetworkBuilder};
use memcnn::gpusim::DeviceConfig;
use memcnn::metrics::{bucket_index, Histogram, MetricsTimeline};
use memcnn::serve::{
    serve, serve_fleet, Arrival, BatchPolicy, FleetConfig, Phase, Placement, ServeConfig,
    WorkloadConfig,
};
use memcnn::tensor::Shape;
use memcnn::trace::{self, Track};

fn black() -> Engine {
    Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
        .with_layout_policy(LayoutPolicy::Heuristic)
}

/// One gauge series as raw bits: `(name, [(t_bits, value_bits)])`.
type SeriesBits = (String, Vec<(u64, u64)>);

/// Bit-exact digest of a timeline: every series name, every sample's
/// `(t, value)` bit pattern, and the run histogram (exact by `Eq`).
fn digest(t: &MetricsTimeline) -> (Vec<SeriesBits>, Histogram) {
    (
        t.series_names()
            .map(|name| {
                let s = t.series(name).expect("named series exists");
                (
                    name.to_string(),
                    s.samples.iter().map(|p| (p.t.to_bits(), p.value.to_bits())).collect(),
                )
            })
            .collect(),
        t.latency_hist.clone(),
    )
}

#[test]
fn timelines_are_deterministic_monotonic_and_histogram_laws_hold() {
    // Must precede every engine call in this process: the thread count
    // is read once and cached, so this binary runs its fan-outs at 4.
    std::env::set_var("MEMCNN_THREADS", "4");

    let net = NetworkBuilder::new("metrics-net", Shape::new(1, 64, 8, 8))
        .conv("CV1", 64, 3, 1, 1)
        .max_pool("PL1", 2, 2)
        .build()
        .unwrap();
    let wl = WorkloadConfig {
        phases: vec![
            Phase { arrival: Arrival::Poisson { rate: 150.0 }, duration: 0.2 },
            Phase { arrival: Arrival::Poisson { rate: 3000.0 }, duration: 0.1 },
        ],
        images_min: 1,
        images_max: 8,
        seed: 77,
    };
    let scfg = ServeConfig::new(wl.clone(), BatchPolicy::new(128, 0.004));

    // (1) Histogram laws on a real served latency vector. The timeline's
    // run histogram covers exactly the served (non-shed) requests.
    let report = serve(&black(), &net, &scfg).unwrap();
    let served: Vec<f64> = report.latencies.iter().copied().filter(|&l| l > 0.0).collect();
    assert!(served.len() >= 50, "need a meaningful latency vector, got {}", served.len());
    assert_eq!(report.timeline.latency_hist.count(), served.len() as u64);

    let mut whole = Histogram::new();
    served.iter().for_each(|&l| whole.record(l));
    assert_eq!(whole, report.timeline.latency_hist, "loop-recorded hist != timeline hist");
    // merge(a, b) == merge(b, a), and chunked recording == whole-vector
    // recording, for an arbitrary 3-way split of the real vector.
    let third = served.len() / 3;
    let (ab, c) = served.split_at(2 * third);
    let (a, b) = ab.split_at(third);
    let hist_of = |chunk: &[f64]| {
        let mut h = Histogram::new();
        chunk.iter().for_each(|&l| h.record(l));
        h
    };
    let (ha, hb, hc) = (hist_of(a), hist_of(b), hist_of(c));
    let mut ab_c = ha.clone();
    ab_c.merge(&hb);
    ab_c.merge(&hc);
    let mut c_ba = hc.clone();
    c_ba.merge(&hb);
    c_ba.merge(&ha);
    assert_eq!(ab_c, c_ba, "merge must be order-independent");
    assert_eq!(ab_c, whole, "chunked merge must equal whole-vector recording");

    // Recorded p99 lands within one bucket of the exact sorted-vector
    // p99 (nearest rank), for every headline percentile.
    let mut sorted = served.clone();
    sorted.sort_by(f64::total_cmp);
    for p in [50.0, 95.0, 99.0] {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        let exact = sorted[rank.clamp(1, sorted.len()) - 1];
        let got = whole.percentile_index(p).expect("non-empty");
        assert!(
            got.abs_diff(bucket_index(exact)) <= 1,
            "p{p}: hist bucket {got} vs exact bucket {} (exact {exact})",
            bucket_index(exact)
        );
    }

    // (2) Perfetto counter tracks: run serve and a fleet under an active
    // collector; every counter series' timestamps must be non-decreasing
    // — on the fleet track too, where batches on different devices
    // overlap in time (the fleet samples at committed launches, which
    // are globally ordered; `done` times are not).
    let fcfg = FleetConfig::new(wl.clone(), BatchPolicy::new(128, 0.004), Placement::LeastLoaded);
    trace::start();
    let _ = serve(&black(), &net, &scfg).unwrap();
    let fleet_report =
        serve_fleet(&[&black(), &black()], std::slice::from_ref(&net), &fcfg).unwrap();
    let captured = trace::finish().expect("collector was started");
    let mut names: Vec<(Track, String)> =
        captured.counters.iter().map(|c| (c.track, c.name.clone())).collect();
    names.sort_by(|x, y| (x.0.tid(), &x.1).cmp(&(y.0.tid(), &y.1)));
    names.dedup();
    assert!(
        names.iter().any(|(t, _)| *t == Track::Serve)
            && names.iter().any(|(t, _)| *t == Track::Fleet),
        "both serve and fleet counter tracks must be populated"
    );
    for (track, name) in &names {
        let series: Vec<f64> = captured
            .counters
            .iter()
            .filter(|c| c.track == *track && c.name == *name)
            .map(|c| c.ts_us)
            .collect();
        assert!(!series.is_empty());
        for w in series.windows(2) {
            assert!(
                w[0] <= w[1],
                "{name} on {track:?}: counter timestamps regress ({} > {})",
                w[0],
                w[1]
            );
        }
    }

    // (3) Timelines are bit-identical across MEMCNN_THREADS — the env
    // re-set is nominal after the first read, so these reruns double as
    // same-process replay checks (matching tests/fleet.rs).
    let serve_base = digest(&serve(&black(), &net, &scfg).unwrap().timeline);
    let fleet_base = digest(&fleet_report.timeline);
    for threads in ["1", "13"] {
        std::env::set_var("MEMCNN_THREADS", threads);
        let s = digest(&serve(&black(), &net, &scfg).unwrap().timeline);
        assert_eq!(serve_base, s, "serve timeline diverged at MEMCNN_THREADS={threads}");
        let f = digest(
            &serve_fleet(&[&black(), &black()], std::slice::from_ref(&net), &fcfg)
                .unwrap()
                .timeline,
        );
        assert_eq!(fleet_base, f, "fleet timeline diverged at MEMCNN_THREADS={threads}");
    }

    // (4) The convoy fix is visible in the per-device queue series: on
    // the same bursty stream, least-loaded spikes one device's backlog
    // well above queue-weighted's peak.
    let peak = |timeline: &MetricsTimeline| {
        (0..2)
            .map(|d| {
                timeline
                    .series(&format!("dev{d}.queue.images"))
                    .map_or(0.0, |s| s.samples.iter().map(|p| p.value).fold(0.0, f64::max))
            })
            .fold(0.0, f64::max)
    };
    let qw_cfg = FleetConfig::new(wl, BatchPolicy::new(128, 0.004), Placement::QueueWeighted);
    let qw = serve_fleet(&[&black(), &black()], std::slice::from_ref(&net), &qw_cfg).unwrap();
    let (ll_peak, qw_peak) = (peak(&fleet_report.timeline), peak(&qw.timeline));
    assert!(qw_peak > 0.0, "the burst must queue images under queue-weighted too");
    assert!(
        ll_peak > qw_peak,
        "least-loaded peak backlog ({ll_peak}) must exceed queue-weighted ({qw_peak}) \
         on a bursty stream — otherwise the convoy defect is gone from the baseline"
    );
}
