//! Cache-correctness integration tests: the memoized fast path must be
//! observationally identical to cold simulation, and the cache must earn
//! its keep on a real workload.
//!
//! These tests read and reset process-global state (the simulation cache
//! and the perf-counter registry), so everything lives in ONE `#[test]` —
//! the harness runs tests of a binary on concurrent threads, and a second
//! test in this file would race the counters.

use memcnn::core::{Engine, LayoutThresholds, Mechanism};
use memcnn::gpusim::{simcache, DeviceConfig, SimOptions};
use memcnn::models::{alexnet, cifar10, lenet};

#[test]
fn cache_is_invisible_in_reports_and_earns_its_keep() {
    // Exercise the parallel probe fan-out too, whatever this container's
    // core count: the worker budget latches on first use, before any
    // simulation has run. (Safe here: this binary has exactly one test,
    // so nothing else can have touched rayon yet.)
    std::env::set_var("MEMCNN_THREADS", "4");

    let engine = |use_cache: bool| {
        Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
            .with_sim_options(SimOptions { use_cache, ..SimOptions::default() })
    };

    // (1) Determinism: NetworkReports are bit-identical cache-on vs
    // cache-off, forward and training. Compare the serialized form — f64s
    // must match to the last bit, not within eps. LeNet and CIFAR between
    // them exercise every kernel family cheaply; AlexNet is covered in (2).
    for net in [lenet().unwrap(), cifar10().unwrap()] {
        let cold = engine(false).simulate_network(&net, Mechanism::Opt).unwrap();
        let warm = engine(true).simulate_network(&net, Mechanism::Opt).unwrap();
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&warm).unwrap(),
            "{}: cache-on report differs from cache-off",
            net.name
        );
        // And a second cached run (now all hits) is still identical.
        let warm2 = engine(true).simulate_network(&net, Mechanism::Opt).unwrap();
        assert_eq!(
            serde_json::to_string(&warm).unwrap(),
            serde_json::to_string(&warm2).unwrap(),
            "{}: hit-path report differs from miss-path",
            net.name
        );
    }
    {
        let net = lenet().unwrap();
        let cold = engine(false).simulate_network_training(&net, Mechanism::Opt).unwrap();
        let warm = engine(true).simulate_network_training(&net, Mechanism::Opt).unwrap();
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&warm).unwrap(),
            "training report differs cache-on vs cache-off"
        );
    }

    // (2) Hit rate: an AlexNet-scale Opt run must hit more than 50% once
    // the engine's probing patterns (candidate scoring + layout DP +
    // autotune revisiting the same kernels) flow through the cache. The
    // warm run doubles as the paper-scale bit-identical check against a
    // cold run.
    simcache::clear();
    let net = alexnet().unwrap();
    let before = simcache::stats();
    let warm = engine(true).simulate_network(&net, Mechanism::Opt).unwrap();
    let after = simcache::stats();
    let cold = engine(false).simulate_network(&net, Mechanism::Opt).unwrap();
    assert_eq!(
        serde_json::to_string(&cold).unwrap(),
        serde_json::to_string(&warm).unwrap(),
        "AlexNet: cache-on report differs from cache-off"
    );
    let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    assert!(
        hit_rate > 0.5,
        "AlexNet Opt run should hit >50% (got {:.1}% over {} lookups)",
        hit_rate * 100.0,
        hits + misses
    );

    // (3) The cache actually held entries (the runs above were not all
    // bypasses), and bypasses stayed at zero: every engine kernel is
    // cacheable.
    assert!(simcache::len() > 0, "cache is empty after a full network run");
    assert_eq!(after.bypasses, before.bypasses, "engine kernels should never bypass the cache");
}
