//! Shape-level reproduction checks: the paper's qualitative claims — who
//! wins, where crossovers fall, rough factors — asserted against the
//! figure harnesses. These are the acceptance criteria of DESIGN.md §5.

use memcnn_bench::figures;
use memcnn_bench::util::{geomean, Ctx};

fn ctx() -> Ctx {
    Ctx::titan_black()
}

#[test]
fn fig1_pooling_always_prefers_chwn_and_cv1_strongly() {
    let rows = figures::fig1(&ctx());
    for (name, ratio) in &rows {
        if name.starts_with("PL") {
            assert!(*ratio > 1.2, "{name}: NCHW pooling should lose clearly, got {ratio:.2}");
        }
    }
    let cv1 = rows.iter().find(|(n, _)| n == "CV1").unwrap().1;
    assert!(cv1 > 2.0, "CV1 should prefer CHWN by >2x, got {cv1:.2}");
}

#[test]
fn fig3_winners_match_the_paper() {
    let rows = figures::fig3(&ctx());
    let get = |n: &str| rows.iter().find(|(name, _)| name == n).unwrap().1;
    // cuda-convnet wins CV1-CV5 and CV9 (paper §IV.A); cuDNN bar < 1.
    for n in ["CV1", "CV2", "CV3", "CV4", "CV5", "CV9"] {
        assert!(get(n) < 1.0, "{n}: cuda-convnet should win, cuDNN bar {:.2}", get(n));
    }
    // cuDNN wins CV7, CV8, CV10-CV12.
    for n in ["CV7", "CV8", "CV10", "CV11", "CV12"] {
        assert!(get(n) > 1.0, "{n}: cuDNN should win, bar {:.2}", get(n));
    }
    // Headline factors: CV1 ~6.5x for convnet, CV10-12 ~2-3.3x for cuDNN.
    assert!(get("CV1") < 0.3);
    assert!(get("CV11") > 1.5 && get("CV11") < 4.0);
}

#[test]
fn fig4_crossovers_are_where_the_paper_puts_them() {
    let (n_sweep, c_sweep) = figures::fig4(&ctx());
    // 4a: cuDNN flat-ish; convnet crosses above between N=64 and N=128.
    let at = |rows: &[(usize, f64, f64)], v: usize| {
        rows.iter().find(|(p, _, _)| *p == v).copied().unwrap()
    };
    let (_, chwn64, nchw64) = at(&n_sweep, 64);
    let (_, chwn128, nchw128) = at(&n_sweep, 128);
    assert!(chwn64 < nchw64, "at N=64 cuDNN still wins");
    assert!(chwn128 > nchw128, "at N=128 cuda-convnet wins");
    // convnet rises monotonically with N up to saturation.
    let (_, chwn16, _) = at(&n_sweep, 16);
    assert!(chwn16 < chwn64 && chwn64 < chwn128);
    // 4b: convnet wins below C=32, cuDNN from 64 up.
    let (_, chwn_c16, nchw_c16) = at(&c_sweep, 16);
    let (_, chwn_c64, nchw_c64) = at(&c_sweep, 64);
    assert!(chwn_c16 > nchw_c16, "at C=16 cuda-convnet wins");
    assert!(chwn_c64 < nchw_c64, "at C=64 cuDNN wins");
}

#[test]
fn fig5_fft_failures_and_wins() {
    let rows = figures::fig5(&ctx());
    let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
    // CV5 and CV6: execution failures for both FFT modes (paper Fig 5).
    for n in ["CV5", "CV6"] {
        let r = get(n);
        assert!(r.fft.is_none() && r.fft_tiling.is_none(), "{n} must FAIL");
    }
    // FFT beats MM on large-filter / many-channel layers (CV7, CV10).
    for n in ["CV7", "CV10"] {
        let r = get(n);
        assert!(r.fft.unwrap() > r.mm, "{n}: FFT should beat MM");
    }
    // FFT loses badly on small channel counts (CV3, CV9).
    for n in ["CV3", "CV9"] {
        let r = get(n);
        assert!(r.fft.unwrap() < 1.0, "{n}: FFT should lose to cuda-convnet");
        assert!(r.fft.unwrap() < r.mm, "{n}: FFT should lose to MM");
    }
}

#[test]
fn fig6_chwn_wins_every_pooling_layer() {
    let rows = figures::fig6(&ctx());
    assert_eq!(rows.len(), 10);
    for r in &rows {
        assert!(r.caffe <= 1.0 + 1e-9, "{}: Caffe must not beat cuda-convnet", r.name);
        assert!(r.cudnn <= 1.0 + 1e-9, "{}: cuDNN must not beat cuda-convnet", r.name);
        // Bandwidths in the plausible band the paper reports (132-205).
        assert!(r.best_gbs > 80.0 && r.best_gbs < 235.0, "{}: {} GB/s", r.name, r.best_gbs);
    }
}

#[test]
fn fig10_transforms_gate_the_layout_benefit() {
    let rows = figures::fig10(&ctx());
    let gm_opt = geomean(&rows.iter().map(|r| r.opt).collect::<Vec<_>>());
    let gm_naive = geomean(&rows.iter().map(|r| r.opt_naive).collect::<Vec<_>>());
    let gm_fast = geomean(&rows.iter().map(|r| r.opt_fast).collect::<Vec<_>>());
    // Paper: GM 2.48x bare, 2.08x with the optimized transform, and the
    // naive transform "cannot sustain the significant performance benefit".
    assert!(gm_opt > 1.8, "bare GM {gm_opt:.2}");
    assert!(gm_fast > 1.4, "fast-transform GM {gm_fast:.2}");
    assert!(gm_naive < gm_fast, "naive transform must be worse");
    // CV9/CV5: transformation does not pay (paper's stated exceptions).
    let cv9 = rows.iter().find(|r| r.name == "CV9").unwrap();
    assert!(cv9.opt_fast < 1.1);
}

#[test]
fn fig11_bandwidth_ladder() {
    let rows = figures::fig11(&ctx());
    for r in &rows {
        assert!(r.opt1 > 2.0 * r.naive, "{}: Opt1 must be >2x naive", r.name);
        if let Some(opt2) = r.opt2 {
            assert!(opt2 > r.opt1, "{}: Opt2 must beat Opt1", r.name);
        }
    }
    // N < 64 layers have no Opt2 (CV9-CV12 in Table 1 have N=32).
    for n in ["CV9", "CV10", "CV11", "CV12"] {
        assert!(rows.iter().find(|r| r.name == n).unwrap().opt2.is_none());
    }
    // CV6 approaches the effective bandwidth (paper: 229.5 of 235).
    let cv6 = rows.iter().find(|r| r.name == "CV6").unwrap();
    assert!(cv6.opt2.unwrap() > 190.0, "CV6 Opt2 {} GB/s", cv6.opt2.unwrap());
}

#[test]
fn fig12_opt_never_loses_and_helps_overlapped_layers() {
    let rows = figures::fig12(&ctx());
    for r in &rows {
        assert!(r.opt >= 0.99, "{}: Opt must not lose to cuda-convnet", r.name);
    }
    // Overlapped AlexNet/ZFNet layers gain from coarsening.
    let gains: Vec<f64> = rows
        .iter()
        .filter(|r| ["PL5", "PL6", "PL8"].contains(&r.name.as_str()))
        .map(|r| r.opt)
        .collect();
    assert!(gains.iter().all(|&g| g > 1.05), "overlapped gains {gains:?}");
    // Non-overlapped LeNet pools tune to (1,1).
    for n in ["PL1", "PL2"] {
        let r = rows.iter().find(|r| r.name == n).unwrap();
        assert_eq!(r.factors, (1, 1), "{n}");
    }
}

#[test]
fn fig13_opt_beats_baseline_everywhere_and_peaks_high() {
    let rows = figures::fig13(&ctx());
    for r in &rows {
        assert!(r.opt > r.baseline, "{}: Opt must beat BL_Best", r.config);
    }
    let peak = rows.iter().map(|r| r.opt).fold(0.0, f64::max);
    let bl_peak = rows.iter().map(|r| r.baseline).fold(0.0, f64::max);
    // Paper: 220.95 vs 58.30 GB/s.
    assert!(peak > 170.0, "Opt peak {peak:.1}");
    assert!(bl_peak < 90.0, "BL peak {bl_peak:.1}");
}

#[test]
fn in_text_claims() {
    let ctx = ctx();
    // CV2 ALU utilization improves with the suitable layout (§II.A).
    let (nchw_util, chwn_util) = figures::alu_utilization(&ctx);
    assert!(chwn_util > nchw_util * 1.2, "{nchw_util:.3} -> {chwn_util:.3}");
    // Softmax ablation GMs near the paper's 2.81x and 5.13x.
    let (gm_fusion, gm_parallel) = figures::softmax_ablation(&ctx);
    assert!(gm_fusion > 2.0 && gm_fusion < 4.0, "fusion GM {gm_fusion:.2}");
    assert!(gm_parallel > 3.0, "parallel GM {gm_parallel:.2}");
    // Transform scratch is a small fraction of the training footprint.
    let (scratch, footprint) = figures::memory_overhead(&ctx);
    assert!((scratch as f64) < 0.08 * footprint as f64);
}
