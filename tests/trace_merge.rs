//! Per-worker trace collection under the engine's parallel probe
//! fan-out: with tracing active the fan-out now RUNS (the old
//! tracing-disables-fan-out special case is gone) and the merged trace
//! is indistinguishable — span for span, bit for bit — from a
//! sequential run's.
//!
//! This binary reads process-global state (the perf registry and the
//! once-locked `MEMCNN_THREADS`), so everything lives in ONE `#[test]`.
//! The env var is set FIRST, before any engine call, to lock the rayon
//! pool at 4 workers and actually exercise the fan-out path.

use memcnn::core::Mechanism;
use memcnn::gpusim::SimOptions;
use memcnn::trace::perf;
use memcnn::trace::{self, Scope};
use memcnn_bench::util::Ctx;

/// Sortable digest of one span: everything the exporters consume. Args
/// compare by their string contents, so an interned `Sym` and an owned
/// `String` with the same text digest identically — exactly what the
/// exporters serialize.
fn span_key(sp: &trace::SpanEvent) -> (String, String, u64, u64, Vec<(String, String)>) {
    (
        sp.name.clone(),
        format!("{:?}", sp.track),
        sp.ts_us.to_bits(),
        sp.dur_us.to_bits(),
        sp.args.iter().map(|(k, v)| (k.as_str().to_string(), v.as_str().to_string())).collect(),
    )
}

#[test]
fn traced_fanout_merges_to_the_sequential_trace() {
    // Must happen before the first engine call in this process: the
    // thread count is read once and cached.
    std::env::set_var("MEMCNN_THREADS", "4");
    let net = memcnn::models::cifar10().unwrap();

    // (1) Traced run with the fan-out enabled (default options: the
    // cache is on, so `parallel_probes_enabled` holds at 4 threads).
    let fanout_before = perf::get("engine.probe.fanout");
    let ctx = Ctx::titan_black();
    trace::start();
    let fan_report = ctx.engine.simulate_network(&net, Mechanism::Opt).unwrap();
    let fan_trace = trace::finish().unwrap();
    let fanned = perf::get("engine.probe.fanout") - fanout_before;
    assert!(fanned > 0, "tracing must no longer disable the probe fan-out");

    // (2) Sequential traced baseline in the same process: disabling the
    // sim cache disables the fan-out (its prewarm exists to warm that
    // cache), so the probes run inline on the orchestrator thread.
    let seq_engine = Ctx::titan_black()
        .engine
        .with_sim_options(SimOptions { use_cache: false, ..SimOptions::default() });
    let fanout_before = perf::get("engine.probe.fanout");
    trace::start();
    let seq_report = seq_engine.simulate_network(&net, Mechanism::Opt).unwrap();
    let seq_trace = trace::finish().unwrap();
    assert_eq!(perf::get("engine.probe.fanout"), fanout_before, "baseline must not fan out");

    // Same simulation either way.
    assert_eq!(fan_report.total_time().to_bits(), seq_report.total_time().to_bits());

    // (3) The span multiset is identical: worker-side records never
    // become spans, and the orchestrator's sequential re-read emits the
    // same timeline a cold sequential run would.
    let mut fan_spans: Vec<_> = fan_trace.spans.iter().map(span_key).collect();
    let mut seq_spans: Vec<_> = seq_trace.spans.iter().map(span_key).collect();
    fan_spans.sort();
    seq_spans.sort();
    assert_eq!(fan_spans.len(), seq_spans.len(), "span count diverged under fan-out");
    assert_eq!(fan_spans, seq_spans, "span multiset diverged under fan-out");

    // (4) Worker-side kernel records are tagged with a `worker:<i>` scope
    // frame (classified speculative by the exporter); everything NOT so
    // tagged — the records the timeline and text profile are built from —
    // matches the sequential run's exactly, in order. The one legitimate
    // exception is the pool-autotune sweep (`Scope::Autotune`): the
    // fan-out run sweeps on workers and memoizes the winner, so its
    // orchestrator replays only the winning configuration, while the
    // sequential run records every swept candidate inline. Those sweep
    // records are planning overhead (never timeline), so they are
    // excluded from the exact comparison and checked separately.
    let on_worker = |k: &&trace::KernelRecord| k.path.iter().any(|f| matches!(f, Scope::Worker(_)));
    let in_autotune = |k: &&trace::KernelRecord| k.in_scope(&Scope::Autotune);
    let fan_main: Vec<String> = fan_trace
        .kernels
        .iter()
        .filter(|k| !on_worker(k) && !in_autotune(k))
        .map(|k| format!("{k:?}"))
        .collect();
    let seq_main: Vec<String> = seq_trace
        .kernels
        .iter()
        .filter(|k| !on_worker(k) && !in_autotune(k))
        .map(|k| format!("{k:?}"))
        .collect();
    assert_eq!(fan_main, seq_main, "non-speculative kernel records diverged under fan-out");
    assert!(
        fan_trace.kernels.iter().any(|k| on_worker(&k)),
        "the fan-out run must actually have recorded worker-side kernels"
    );
    assert!(
        !seq_trace.kernels.iter().any(|k| on_worker(&k)),
        "the sequential baseline must have no worker-side records"
    );
    assert!(
        seq_trace.kernels.iter().any(|k| in_autotune(&k)),
        "the sequential baseline records its autotune sweeps inline"
    );
    assert!(
        !fan_trace.kernels.iter().any(|k| !on_worker(&k) && in_autotune(&k)),
        "the fan-out orchestrator must replay memoized autotune winners, not re-sweep"
    );

    // (5) Layout decisions — the planner's observable output — agree.
    assert_eq!(fan_trace.decisions.len(), seq_trace.decisions.len());
    for (a, b) in fan_trace.decisions.iter().zip(&seq_trace.decisions) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
