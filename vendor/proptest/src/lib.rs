//! An offline, deterministic stand-in for the subset of `proptest` this
//! workspace uses.
//!
//! The `proptest!` macro expands each property into a `#[test]` that runs
//! `ProptestConfig::cases` sampled cases. Sampling is deterministic — the
//! RNG is seeded from the test's module path, name, and case index — so
//! failures reproduce exactly. There is no shrinking: a failing case
//! panics with the ordinary `assert!` message (the sampled inputs are
//! visible through the assertion text or by printing inside the body).
//!
//! Supported surface: integer/float range strategies, tuples up to 7,
//! `prop_map`, `Just`, `any::<T>()` for primitive ints and bool,
//! `collection::vec`, `bool::ANY`, `ProptestConfig::with_cases`, and
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`.

/// Deterministic RNG and per-test configuration.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of sampled cases.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// SplitMix64 RNG used for strategy sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one case of one property, seeded from the test identity
        /// so runs are reproducible.
        pub fn for_case(test_path: &str, case: u32) -> TestRng {
            // FNV-1a over the path, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_path.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRng { state: h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15)) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u128 + 1;
                    start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
}

/// `any::<T>()` for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Sample an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The "any bool" strategy value.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::bool::ANY`, `prop::collection::vec`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Assert inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Reject the current case when the precondition fails. The property
/// body runs inside a `Result`-returning closure, so this expands to an
/// early `Ok` return — the case is skipped, not failed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                // The body runs in a Result-returning closure so `return
                // Ok(())` and `prop_assume!` rejections work as in real
                // proptest; assertion failures still panic directly.
                let __case = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(__e) = __case() {
                    panic!("property case failed: {}", __e);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies respect bounds; tuples and prop_map compose.
        #[test]
        fn ranges_and_maps(x in 1usize..10, (a, b) in (0u64..5, 0u64..5),
                           v in prop::collection::vec(0u32..3, 2..=4),
                           flag in prop::bool::ANY) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5 && b < 5);
            prop_assert!((2..=4).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 3));
            let _ = flag;
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (0u64..1000, 0u64..1000).prop_map(|(a, b)| a * 1000 + b);
        let mut r1 = TestRng::for_case("x", 3);
        let mut r2 = TestRng::for_case("x", 3);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
