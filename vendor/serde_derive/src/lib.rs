//! Derive macros for the vendored serde subset.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` by
//! hand-parsing the item's token stream (the offline build has no
//! `syn`/`quote`). Supported shapes — which cover every derive site in
//! this workspace:
//!
//! - structs with named fields (honouring `#[serde(skip)]` on fields),
//! - unit structs,
//! - enums whose variants are all unit variants (serialized as their name,
//!   matching serde's externally-tagged default for unit variants).
//!
//! Anything else produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct { name: String, fields: Vec<String> },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<String> },
    Unsupported(String),
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Consume leading attributes; returns true if any was `#[serde(skip)]`.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while *pos < tokens.len() && is_punct(&tokens[*pos], '#') {
        *pos += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if inner.first().is_some_and(|t| is_ident(t, "serde")) {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    if args.stream().into_iter().any(|t| is_ident(&t, "skip")) {
                        skip = true;
                    }
                }
            }
            *pos += 1;
        }
    }
    skip
}

/// Skip an optional visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if *pos < tokens.len() && is_ident(&tokens[*pos], "pub") {
        *pos += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
            if g.delimiter() == Delimiter::Parenthesis {
                *pos += 1;
            }
        }
    }
}

/// Parse `field: Type,` items of a named-field struct body, returning the
/// names of fields that are not `#[serde(skip)]`-ed.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = skip_attrs(&tokens, &mut pos);
        skip_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            _ => break,
        };
        pos += 1;
        if !matches!(tokens.get(pos), Some(t) if is_punct(t, ':')) {
            break;
        }
        pos += 1;
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                t if is_punct(t, '<') => depth += 1,
                t if is_punct(t, '>') => depth -= 1,
                t if is_punct(t, ',') && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        if !skip {
            fields.push(name);
        }
    }
    fields
}

/// Parse enum variants; `None` if any variant carries data.
fn parse_unit_variants(body: TokenStream) -> Option<Vec<String>> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            _ => break,
        };
        pos += 1;
        match tokens.get(pos) {
            None => {}
            Some(t) if is_punct(t, ',') => {
                pos += 1;
            }
            Some(t) if is_punct(t, '=') => {
                // Explicit discriminant: consume until the next comma.
                while pos < tokens.len() && !is_punct(&tokens[pos], ',') {
                    pos += 1;
                }
                pos += 1;
            }
            Some(TokenTree::Group(_)) => return None, // data-carrying variant
            Some(_) => return None,
        }
        variants.push(name);
    }
    Some(variants)
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos);
    skip_vis(&tokens, &mut pos);
    let is_enum = match tokens.get(pos) {
        Some(t) if is_ident(t, "struct") => false,
        Some(t) if is_ident(t, "enum") => true,
        _ => return Item::Unsupported("expected `struct` or `enum`".to_string()),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Item::Unsupported("missing item name".to_string()),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(t) if is_punct(t, '<')) {
        return Item::Unsupported(format!(
            "vendored serde derive does not support generics on `{name}`"
        ));
    }
    match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                match parse_unit_variants(g.stream()) {
                    Some(variants) => Item::Enum { name, variants },
                    None => Item::Unsupported(format!(
                        "vendored serde derive only supports unit variants; \
                         `{name}` has a data-carrying variant"
                    )),
                }
            } else {
                Item::Struct { name, fields: parse_named_fields(g.stream()) }
            }
        }
        Some(t) if is_punct(t, ';') && !is_enum => Item::UnitStruct { name },
        _ => Item::Unsupported(format!(
            "vendored serde derive only supports brace bodies on `{name}`"
        )),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut body = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_json(&self, out: &mut String) {{\n{body}\n}}\n}}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut String) {{ out.push_str(\"null\"); }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let arms: String =
                variants.iter().map(|v| format!("{name}::{v} => \"{v}\",\n")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_json(&self, out: &mut String) {{\n\
                 let s = match self {{\n{arms}}};\n\
                 ::serde::write_json_string(s, out);\n}}\n}}"
            )
        }
        Item::Unsupported(msg) => format!("compile_error!(\"{msg}\");"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, .. } | Item::UnitStruct { name } | Item::Enum { name, .. } => {
            format!("impl ::serde::Deserialize for {name} {{}}")
        }
        Item::Unsupported(msg) => format!("compile_error!(\"{msg}\");"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}
