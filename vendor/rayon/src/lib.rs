//! An offline stand-in for `rayon` with real (scoped-thread) parallelism.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of rayon's prelude the workspace uses — `par_iter`, `par_iter_mut`,
//! `into_par_iter`, `par_chunks` / `par_chunks_mut` — as thin wrappers whose
//! *terminal* operations (`for_each`, `map(..).collect()`, `sum`) fan the work
//! out across `std::thread::scope` workers.
//!
//! Guarantees, in order of importance:
//!
//! - **Determinism.** `collect` preserves input order exactly: items are split
//!   into contiguous portions, each worker maps its portion in order, and the
//!   portions are concatenated in order. Output is bit-identical to the
//!   sequential run regardless of scheduling.
//! - **Graceful degradation.** With one available core (or
//!   `MEMCNN_THREADS=1`), fewer than [`MIN_PARALLEL_ITEMS`] items, or inside
//!   an already-parallel region (no nested thread explosions), execution is a
//!   plain sequential loop with zero thread overhead.
//! - **Panic propagation.** A worker panic is re-raised on the calling thread
//!   (via `JoinHandle::unwrap`), matching rayon.
//!
//! Thread count comes from `MEMCNN_THREADS` if set, else
//! `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::sync::OnceLock;

/// Below this many items the scheduling overhead cannot pay for itself.
pub const MIN_PARALLEL_ITEMS: usize = 4;

/// Worker-thread budget: `MEMCNN_THREADS` env override, else the number of
/// available cores. Computed once per process; a malformed override warns
/// once on stderr and falls back to the core count.
pub fn max_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        let fallback = std::thread::available_parallelism().map_or(1, |n| n.get());
        threads_from(std::env::var("MEMCNN_THREADS").ok().as_deref(), fallback)
    })
}

/// Parse a `MEMCNN_THREADS` value, warning on stderr and returning
/// `fallback` when it is present but not a positive integer. Pure so the
/// fallback path is unit-testable; the `OnceLock` in [`max_threads`]
/// guarantees the warning fires at most once per process.
fn threads_from(raw: Option<&str>, fallback: usize) -> usize {
    match raw {
        None => fallback,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!(
                    "memcnn: ignoring malformed MEMCNN_THREADS={v:?} \
                     (want a positive integer); using {fallback}"
                );
                fallback
            }
        },
    }
}

thread_local! {
    /// Set while this thread is a worker inside a parallel region; nested
    /// "parallel" calls then run sequentially instead of spawning again.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Map `f` over `items`, in input order, using up to [`max_threads`] scoped
/// worker threads. Falls back to a sequential loop when parallelism cannot
/// help (single core, tiny input, nested region).
fn execute<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    execute_min(items, f, MIN_PARALLEL_ITEMS)
}

/// [`execute`] for coarse-grained orchestration fan-outs (one item is a
/// whole device step or a plan compile, not one array element): worker
/// threads engage from two items up, because each item amortizes far more
/// work than [`MIN_PARALLEL_ITEMS`] assumes. Same guarantees as the
/// prelude terminals — input order preserved, sequential fallback when
/// nested or single-threaded, worker panics re-raised.
pub fn scope_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    execute_min(items, f, 2)
}

fn execute_min<T, R, F>(items: Vec<T>, f: F, min_items: usize) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n);
    let nested = IN_PARALLEL_REGION.with(|c| c.get());
    if threads <= 1 || n < min_items || nested {
        return items.into_iter().map(f).collect();
    }
    // Contiguous portions, concatenated back in order => deterministic output.
    let portion = n.div_ceil(threads);
    let mut portions: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let p: Vec<T> = it.by_ref().take(portion).collect();
        if p.is_empty() {
            break;
        }
        portions.push(p);
    }
    let f = &f;
    let results: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = portions
            .into_iter()
            .map(|p| {
                scope.spawn(move || {
                    IN_PARALLEL_REGION.with(|c| c.set(true));
                    p.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    });
    results.into_iter().flatten().collect()
}

/// A "parallel" iterator: a lazy wrapper over a standard iterator whose
/// terminal operations execute on worker threads.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Pair each item with its index (like `Iterator::enumerate`), preserving
    /// the parallel terminal operations.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter { inner: self.inner.enumerate() }
    }

    /// Lazily map each item; `collect`/`for_each` on the result run `f` on
    /// worker threads.
    pub fn map<R, F: Fn(I::Item) -> R>(self, f: F) -> ParMap<I, F> {
        ParMap { inner: self.inner, f }
    }

    /// Run `op` on every item, in parallel. Completion of this call is a
    /// barrier: all items have been processed when it returns.
    pub fn for_each<F>(self, op: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Sync,
    {
        let items: Vec<I::Item> = self.inner.collect();
        execute(items, op);
    }

    /// Sum the items. Partial sums are computed per portion and folded in
    /// portion order, which is exact for the integer sums used here.
    pub fn sum<S>(self) -> S
    where
        I::Item: Send,
        S: std::iter::Sum<I::Item> + std::iter::Sum<S> + Send,
    {
        let items: Vec<I::Item> = self.inner.collect();
        // One partial sum per item portion would need chunking machinery;
        // summing is memory-bound and cheap, so fold sequentially.
        items.into_iter().sum()
    }

    /// Collect the items in input order.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }
}

/// Lazy parallel map: created by [`ParIter::map`], executed by `collect`.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParMap<I, F>
where
    I: Iterator,
    I::Item: Send,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    /// Map every item on worker threads and collect results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let items: Vec<I::Item> = self.inner.collect();
        execute(items, self.f).into_iter().collect()
    }

    /// Map every item on worker threads, discarding results (barrier).
    pub fn for_each<G>(self, op: G)
    where
        G: Fn(R) + Sync,
    {
        let f = self.f;
        let items: Vec<I::Item> = self.inner.collect();
        execute(items, move |x| op(f(x)));
    }
}

pub mod prelude {
    pub use super::{ParIter, ParMap};

    /// `par_iter` over collections that view as slices.
    pub trait IntoParallelRefIterator<'a> {
        /// The parallel iterator type.
        type Iter;
        /// Parallel iteration by reference.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = ParIter<std::slice::Iter<'a, T>>;
        fn par_iter(&'a self) -> Self::Iter {
            ParIter { inner: self.iter() }
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = ParIter<std::slice::Iter<'a, T>>;
        fn par_iter(&'a self) -> Self::Iter {
            ParIter { inner: self.iter() }
        }
    }

    /// `par_iter_mut` over collections that view as slices.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The parallel iterator type.
        type Iter;
        /// Parallel iteration by mutable reference.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Iter = ParIter<std::slice::IterMut<'a, T>>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            ParIter { inner: self.iter_mut() }
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Iter = ParIter<std::slice::IterMut<'a, T>>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            ParIter { inner: self.iter_mut() }
        }
    }

    /// `into_par_iter` for owned collections and index ranges.
    pub trait IntoParallelIterator {
        /// The parallel iterator type.
        type Iter;
        /// Parallel owning iteration.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = ParIter<std::vec::IntoIter<T>>;
        fn into_par_iter(self) -> Self::Iter {
            ParIter { inner: self.into_iter() }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = ParIter<std::ops::Range<usize>>;
        fn into_par_iter(self) -> Self::Iter {
            ParIter { inner: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<u64> {
        type Iter = ParIter<std::ops::Range<u64>>;
        fn into_par_iter(self) -> Self::Iter {
            ParIter { inner: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Iter = ParIter<std::ops::Range<u32>>;
        fn into_par_iter(self) -> Self::Iter {
            ParIter { inner: self }
        }
    }

    /// `par_chunks` / `par_chunks_mut` over slices. Chunks are disjoint
    /// sub-slices, so handing each to a different worker is safe.
    pub trait ParallelSliceExt<T> {
        /// Non-overlapping chunks by reference.
        fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
        /// Non-overlapping chunks by mutable reference.
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    }

    impl<T> ParallelSliceExt<T> for [T] {
        fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
            ParIter { inner: self.chunks(size) }
        }
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
            ParIter { inner: self.chunks_mut(size) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_execute_matches_sequential() {
        // Force the threaded path regardless of core count by exceeding
        // MIN_PARALLEL_ITEMS; on a 1-core box this still exercises the
        // sequential fallback, which must give the same answer.
        let items: Vec<u64> = (0..497).collect();
        let out = super::execute(items.clone(), |x| x * x + 1);
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let hits = AtomicUsize::new(0);
        let v: Vec<i32> = (0..256).collect();
        v.par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn sequential_equivalents_work() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(sum, 45);
        let mut buf = [0u8; 8];
        buf.par_chunks_mut(4).enumerate().for_each(|(i, c)| c.fill(i as u8));
        assert_eq!(buf, [0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn chunks_mut_parallel_writes_are_disjoint() {
        let mut buf = vec![0u32; 64];
        buf.par_chunks_mut(8).enumerate().for_each(|(i, c)| {
            for slot in c.iter_mut() {
                *slot = i as u32;
            }
        });
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, (i / 8) as u32);
        }
    }

    #[test]
    fn scope_map_preserves_order_from_two_items_up() {
        assert_eq!(super::scope_map(Vec::<u32>::new(), |x: u32| x), Vec::<u32>::new());
        assert_eq!(super::scope_map(vec![7], |x: u32| x + 1), vec![8]);
        let pairs: Vec<(usize, usize)> = super::scope_map((0..9).collect(), |i: usize| (i, i * i));
        assert_eq!(pairs, (0..9).map(|i| (i, i * i)).collect::<Vec<_>>());
    }

    #[test]
    fn malformed_thread_override_warns_and_falls_back() {
        assert_eq!(super::threads_from(None, 6), 6);
        assert_eq!(super::threads_from(Some("4"), 6), 4);
        assert_eq!(super::threads_from(Some("zero"), 6), 6);
        assert_eq!(super::threads_from(Some("0"), 6), 6);
        assert_eq!(super::threads_from(Some("-2"), 6), 6);
        assert_eq!(super::threads_from(Some(""), 6), 6);
    }

    #[test]
    fn nested_regions_do_not_deadlock() {
        let outer: Vec<usize> = (0..8).collect();
        let sums: Vec<usize> = outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<usize> = (0..16).collect();
                inner.par_iter().map(|&j| i * j).collect::<Vec<_>>().into_iter().sum()
            })
            .collect();
        assert_eq!(sums.len(), 8);
        assert_eq!(sums[1], (0..16).sum::<usize>());
    }
}
