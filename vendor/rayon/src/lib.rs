//! A sequential, offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of rayon's prelude the workspace uses — `par_iter`,
//! `par_iter_mut`, `into_par_iter`, `par_chunks_mut` — as plain sequential
//! std iterators. Every adaptor the call sites chain afterwards (`map`,
//! `collect`, `for_each`, `zip`, `enumerate`, `sum`, ...) is then the
//! ordinary `Iterator` machinery, so behaviour is identical minus the
//! parallelism. Determinism actually improves: there is no scheduling
//! nondeterminism to reason about.

pub mod prelude {
    /// Sequential `par_iter` over collections that view as slices.
    pub trait IntoParallelRefIterator<'a> {
        /// The iterator type.
        type Iter;
        /// "Parallel" (here: sequential) iteration by reference.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// Sequential `par_iter_mut`.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The iterator type.
        type Iter;
        /// "Parallel" (here: sequential) iteration by mutable reference.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// Sequential `into_par_iter`.
    pub trait IntoParallelIterator {
        /// The iterator type.
        type Iter;
        /// "Parallel" (here: sequential) owning iteration.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl IntoParallelIterator for std::ops::Range<u64> {
        type Iter = std::ops::Range<u64>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Iter = std::ops::Range<u32>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// Sequential `par_chunks` / `par_chunks_mut` over slices.
    pub trait ParallelSliceExt<T> {
        /// Non-overlapping chunks by reference.
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
        /// Non-overlapping chunks by mutable reference.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceExt<T> for [T] {
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sequential_equivalents_work() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(sum, 45);
        let mut buf = [0u8; 8];
        buf.par_chunks_mut(4).enumerate().for_each(|(i, c)| c.fill(i as u8));
        assert_eq!(buf, [0, 0, 0, 0, 1, 1, 1, 1]);
    }
}
