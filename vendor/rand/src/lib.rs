//! An offline, deterministic stand-in for the subset of `rand` used by
//! this workspace: `StdRng::seed_from_u64` plus `Rng::gen_range` over
//! integer and float ranges. The generator is SplitMix64 — statistically
//! solid for synthetic-data purposes and fully reproducible. Note the
//! stream differs from upstream `rand`'s ChaCha-based `StdRng`, which is
//! fine here: every consumer seeds explicitly and only requires
//! per-seed determinism, not a specific stream.

/// Raw 64-bit generator core.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts, producing `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator trait (blanket-implemented over cores).
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Generator implementations.
pub mod rngs {
    /// SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            use super::RngCore;
            let mut rng = StdRng { state: seed };
            // Warm up so nearby seeds decorrelate immediately.
            rng.next_u64();
            rng
        }
    }
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                let r = rng.next_u64() as u128 % span;
                self.start + r as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                start + r as $t
            }
        }
    )*};
}

sample_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let av: Vec<u64> = (0..4).map(|_| a.gen_range(0u64..1000)).collect();
        let bv: Vec<u64> = (0..4).map(|_| b.gen_range(0u64..1000)).collect();
        let cv: Vec<u64> = (0..4).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
        // Values spread across the interval.
        let mut lo = false;
        let mut hi = false;
        for _ in 0..100 {
            let v: f32 = rng.gen_range(0.0..1.0);
            lo |= v < 0.4;
            hi |= v > 0.6;
        }
        assert!(lo && hi);
    }

    #[test]
    fn int_ranges_cover_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..50 {
            let v = rng.gen_range(5u32..=6);
            assert!(v == 5 || v == 6);
        }
    }
}
