//! An offline micro stand-in for `criterion`'s harness API: enough for
//! `criterion_group!` / `criterion_main!` benches to compile and produce
//! rough timings (median of a few batches) without crates.io access. No
//! statistics, plots, or baselines — just name + time per iteration.

pub use std::hint::black_box;

use std::time::Instant;

/// Minimal benchmark driver.
pub struct Criterion {
    batches: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { batches: 5 }
    }
}

/// Timing handle passed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Run `f` repeatedly, timing the batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

impl Criterion {
    /// Time a named closure and print a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibrate the iteration count to roughly 20 ms per batch.
        let mut b = Bencher { iters: 1, elapsed_ns: 0.0 };
        f(&mut b);
        let per_iter = b.elapsed_ns.max(1.0);
        let iters = ((20e6 / per_iter) as u64).clamp(1, 1_000_000);
        let mut best = f64::INFINITY;
        for _ in 0..self.batches {
            let mut b = Bencher { iters, elapsed_ns: 0.0 };
            f(&mut b);
            best = best.min(b.elapsed_ns / iters as f64);
        }
        println!("{name:<50} {:>12.1} ns/iter", best);
        self
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` for a set of groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
