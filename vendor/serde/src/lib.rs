//! A minimal, offline, API-compatible subset of `serde`.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a tiny serde whose surface covers exactly what
//! the codebase uses: `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! on non-generic structs and unit enums, plus enough `impl Serialize`
//! coverage for primitives and containers. Serialization is JSON-directed:
//! `Serialize::serialize_json` appends the JSON encoding of `self` to a
//! string buffer, and the sibling `serde_json` stub builds `to_string` /
//! `to_string_pretty` on top of it.
//!
//! The derive macro lives in `serde_derive` and understands named-field
//! structs, unit-variant enums, and the `#[serde(skip)]` field attribute.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types that can append their JSON encoding to a buffer.
///
/// This is the vendored stand-in for `serde::Serialize`. Derived impls and
/// the manual impls below are the only producers; `serde_json::to_string`
/// is the only consumer.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait mirroring `serde::Deserialize`.
///
/// Nothing in the workspace deserializes through serde (parsing goes
/// through `serde_json::Value`), so the derive only needs to prove the
/// trait is implemented.
pub trait Deserialize: Sized {}

/// Escape and append a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite-checked JSON number (NaN/inf become `null`, as
/// `serde_json` does for lossy float modes).
pub fn write_json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Shortest roundtrip formatting via Rust's float Display.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&format!("{self}"));
            }
        }
    )*};
}

serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        write_json_f64(*self as f64, out);
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        write_json_f64(*self, out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(',');
        self.2.serialize_json(out);
        out.push(']');
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(k.as_ref(), out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_encode_as_json() {
        let mut s = String::new();
        42u32.serialize_json(&mut s);
        s.push(' ');
        (-1.5f64).serialize_json(&mut s);
        s.push(' ');
        true.serialize_json(&mut s);
        s.push(' ');
        "a\"b".serialize_json(&mut s);
        assert_eq!(s, "42 -1.5 true \"a\\\"b\"");
    }

    #[test]
    fn containers_encode_as_json() {
        let mut s = String::new();
        vec![1u8, 2, 3].serialize_json(&mut s);
        assert_eq!(s, "[1,2,3]");
        let mut s = String::new();
        Option::<u8>::None.serialize_json(&mut s);
        assert_eq!(s, "null");
        let mut s = String::new();
        f64::NAN.serialize_json(&mut s);
        assert_eq!(s, "null");
    }
}
