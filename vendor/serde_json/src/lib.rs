//! A minimal, offline subset of `serde_json`.
//!
//! Provides [`to_string`] / [`to_string_pretty`] over the vendored serde's
//! `Serialize`, and a self-contained [`Value`] with a strict JSON parser
//! ([`from_str`]) — enough to emit machine-readable reports and to validate
//! emitted JSON in tests.

use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let v = from_str(&compact)?;
    let mut out = String::new();
    v.write_pretty(&mut out, 0);
    Ok(out)
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Key order is not preserved (sorted).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => serde::write_json_f64(*n, out),
            Value::String(s) => serde::write_json_string(s, out),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_string(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => serde::write_json_f64(*n, out),
            Value::String(s) => serde::write_json_string(s, out),
            Value::Array(a) if a.is_empty() => out.push_str("[]"),
            Value::Array(a) => {
                out.push_str("[\n");
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(m) if m.is_empty() => out.push_str("{}"),
            Value::Object(m) => {
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    serde::write_json_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl Serialize for Value {
    fn serialize_json(&self, out: &mut String) {
        self.write_compact(out);
    }
}

/// Parse a JSON document strictly. Trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected {:?} at byte {}", c as char, *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
        None => Err(Error("unexpected end of input".to_string())),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| Error(e.to_string()))?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| Error(format!("invalid number {text:?} at byte {start}")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                            16,
                        )
                        .map_err(|e| Error(e.to_string()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("bad escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| Error(e.to_string()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err(Error("unterminated string".to_string())),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(Error(format!("expected ',' or ']' at byte {}", *pos))),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(Error(format!("expected ',' or '}}' at byte {}", *pos))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y"},"d":null,"e":true}"#;
        let v = from_str(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
        let back = to_string(&VString(doc)).unwrap();
        assert!(from_str(&from_str_display(&v)).is_ok());
        let _ = back;
    }

    // Helper: re-serialize a Value through the pretty writer.
    fn from_str_display(v: &Value) -> String {
        let mut s = String::new();
        v.write_pretty(&mut s, 0);
        s
    }

    struct VString<'a>(&'a str);
    impl serde::Serialize for VString<'_> {
        fn serialize_json(&self, out: &mut String) {
            serde::write_json_string(self.0, out);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
    }
}
