//! Quickstart: the memory-efficiency story on one convolution layer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a CNN layer, runs it functionally in both data layouts (checking
//! the results agree), then asks the GPU memory-hierarchy simulator which
//! layout a GTX Titan Black prefers — and compares that with the paper's
//! `(Ct, Nt)` heuristic.

use memcnn::core::{choose_layout, LayoutThresholds};
use memcnn::gpusim::{simulate, DeviceConfig, SimOptions};
use memcnn::kernels::conv::conv_forward;
use memcnn::kernels::conv::direct_chwn::DirectConvChwn;
use memcnn::kernels::conv::mm_nchw::MmConvNchw;
use memcnn::kernels::ConvShape;
use memcnn::tensor::{Layout, Tensor};

fn main() {
    // LeNet's first convolution from the paper's Table 1:
    // batch 128, 1 input channel, 28x28 images, 16 filters of 5x5.
    let shape = ConvShape::table1(128, 16, 28, 5, 1, 1);
    println!("layer: {shape}");

    // --- Functional execution: layouts change memory order, not values.
    let input_nchw = Tensor::random(shape.input_shape(), Layout::NCHW, 7);
    let input_chwn = input_nchw.to_layout(Layout::CHWN);
    let filter = Tensor::random(shape.filter_shape(), Layout::NCHW, 8);
    let out_a = conv_forward(&input_nchw, &filter, &shape, Layout::NCHW).unwrap();
    let out_b = conv_forward(&input_chwn, &filter, &shape, Layout::CHWN).unwrap();
    assert!(out_a.approx_eq(&out_b, 1e-3), "layouts must not change results");
    println!("functional check: NCHW and CHWN executions agree ✓");

    // --- Simulated execution: layouts change *time*.
    let device = DeviceConfig::titan_black();
    let opts = SimOptions::default();
    let direct = simulate(&device, &DirectConvChwn::new(shape), &opts).unwrap();
    let mm = MmConvNchw::new(shape).simulate(&device, &opts).unwrap();
    println!("\non a simulated {}:", device.name);
    println!(
        "  CHWN + direct convolution : {:8.3} ms ({:6.0} GFLOP/s)",
        direct.time() * 1e3,
        direct.gflops()
    );
    println!(
        "  NCHW + im2col + GEMM      : {:8.3} ms ({:6.0} GFLOP/s)",
        mm.time() * 1e3,
        shape.flops() as f64 / mm.time() / 1e9
    );
    println!("  -> {:.2}x from choosing the right data layout", mm.time() / direct.time());

    // --- The paper's heuristic agrees without measuring anything.
    let th = LayoutThresholds::titan_black_paper();
    let pick = choose_layout(&shape, &th);
    println!(
        "\nheuristic (Ct={}, Nt={}): prefers {pick} — {}",
        th.ct,
        th.nt,
        if (pick == Layout::CHWN) == (direct.time() < mm.time()) {
            "matches the measurement ✓"
        } else {
            "disagrees with the measurement ✗"
        }
    );
}
