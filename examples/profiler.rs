//! Simulated kernel profiler — the nvprof-style breakdowns the paper's
//! methodology leans on (achieved bandwidth, ALU utilization, transaction
//! counts, what bounds the kernel).
//!
//! ```text
//! cargo run --release --example profiler -- conv  N Ci H Co F S [pad]
//! cargo run --release --example profiler -- pool  N C H win S
//! cargo run --release --example profiler -- softmax batch categories
//! cargo run --release --example profiler -- transform N C H W
//! cargo run --release --example profiler -- network <net> [mechanism]
//! cargo run --release --example profiler                # demo set
//! ```
//!
//! The `network` kind traces a whole-network simulation and prints the
//! text profile (layer timeline, bound breakdown, layout decisions); the
//! `profile` binary in `memcnn-bench` additionally writes the Perfetto
//! `trace.json`.

use memcnn::gpusim::{simulate, DeviceConfig, KernelSpec, SimOptions};
use memcnn::kernels::conv::direct_chwn::DirectConvChwn;
use memcnn::kernels::pool::chwn::PoolChwn;
use memcnn::kernels::pool::nchw::PoolNchwCaffe;
use memcnn::kernels::softmax::{SoftmaxFused, SoftmaxFusedSerial};
use memcnn::kernels::transform::{TransformImpl, TransformKernel};
use memcnn::kernels::{ConvShape, PoolShape, SoftmaxShape};
use memcnn::tensor::{Layout, Shape};

fn profile(device: &DeviceConfig, kernels: &[&dyn KernelSpec]) {
    let opts = SimOptions::default();
    for k in kernels {
        match simulate(device, *k, &opts) {
            Ok(r) => println!("{r}\n"),
            Err(e) => println!("{}\n  DOES NOT RUN: {e}\n", k.name()),
        }
    }
}

fn main() {
    let device = DeviceConfig::titan_black();
    println!("profiling on: {}\n", device.name);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nums = |from: usize| -> Vec<usize> {
        args[from..].iter().map(|a| a.parse().expect("numeric argument")).collect()
    };
    match args.first().map(String::as_str) {
        Some("conv") => {
            let d = nums(1);
            let shape = ConvShape {
                pad: d.get(6).copied().unwrap_or(0),
                ..ConvShape::table1(d[0], d[3], d[2], d[4], d[1], d[5])
            };
            profile(&device, &[&DirectConvChwn::new(shape)]);
            let mm = memcnn::kernels::conv::mm_nchw::MmConvNchw::new(shape);
            for k in mm.kernels() {
                profile(&device, &[k]);
            }
        }
        Some("pool") => {
            let d = nums(1);
            let shape = PoolShape::table1(d[0], d[2], d[3], d[1], d[4]);
            profile(&device, &[&PoolChwn::new(shape), &PoolNchwCaffe::new(shape)]);
        }
        Some("softmax") => {
            let d = nums(1);
            let shape = SoftmaxShape::new(d[0], d[1]);
            profile(&device, &[&SoftmaxFusedSerial::new(shape), &SoftmaxFused::new(shape)]);
        }
        Some("transform") => {
            let d = nums(1);
            let shape = Shape::new(d[0], d[1], d[2], d[3]);
            for imp in [TransformImpl::Naive, TransformImpl::Opt1, TransformImpl::Opt2] {
                if imp == TransformImpl::Opt2 && shape.n < 64 {
                    continue;
                }
                profile(&device, &[&TransformKernel::new(shape, Layout::CHWN, Layout::NCHW, imp)]);
            }
        }
        None => {
            // Demo: the paper's two flagship kernels.
            println!("-- CONV1 (LeNet), direct CHWN --");
            profile(&device, &[&DirectConvChwn::new(ConvShape::table1(128, 16, 28, 5, 1, 1))]);
            println!("-- PL5 (AlexNet) pooling, both layouts --");
            let pl5 = PoolShape::table1(128, 55, 3, 96, 2);
            profile(&device, &[&PoolChwn::new(pl5), &PoolNchwCaffe::new(pl5)]);
            println!("-- softmax 128/1000, fused --");
            profile(&device, &[&SoftmaxFused::new(SoftmaxShape::new(128, 1000))]);
        }
        Some("network") => {
            use memcnn_bench::profile::{find_mechanism, find_network, profile_network};
            use memcnn_bench::util::Ctx;
            let net = args
                .get(1)
                .and_then(|n| find_network(n))
                .unwrap_or_else(|| memcnn::models::alexnet().unwrap());
            let mech =
                args.get(2).and_then(|m| find_mechanism(m)).unwrap_or(memcnn::core::Mechanism::Opt);
            let out = profile_network(&Ctx::titan_black(), &net, mech, false, 10)
                .expect("network simulation");
            print!("{}", out.profile_text);
        }
        Some(other) => {
            eprintln!("unknown kind {other:?}; use conv|pool|softmax|transform|network");
            std::process::exit(2);
        }
    }
}
