//! Network zoo: simulate the paper's five networks under every library
//! mechanism (a compact Fig 14), then show one network's per-layer layout
//! assignment and transformation placement under `Opt`.
//!
//! ```text
//! cargo run --release --example network_zoo            # all five networks
//! cargo run --release --example network_zoo -- LeNet   # detail one net
//! ```

use memcnn::core::{Engine, LayoutThresholds, Mechanism};
use memcnn::gpusim::DeviceConfig;
use memcnn::models::all_networks;

fn main() {
    let filter: Option<String> = std::env::args().nth(1);
    let engine = Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper());
    let nets: Vec<_> = all_networks()
        .into_iter()
        .filter(|n| filter.as_deref().map(|f| n.name.eq_ignore_ascii_case(f)).unwrap_or(true))
        .collect();
    if nets.is_empty() {
        eprintln!("no network matches {filter:?}; try LeNet, CIFAR, AlexNet, ZFNet, VGG");
        std::process::exit(2);
    }

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "network", "cuDNN-MM", "cuda-convnet", "cuDNN-Best", "Opt"
    );
    let mut details = Vec::new();
    for net in &nets {
        let time = |m: Mechanism| {
            engine.simulate_network(net, m).expect("network simulates").total_time() * 1e3
        };
        let opt_report = engine.simulate_network(net, Mechanism::Opt).expect("simulates");
        println!(
            "{:<10} {:>9.2} ms {:>9.2} ms {:>9.2} ms {:>9.2} ms",
            net.name,
            time(Mechanism::CudnnMm),
            time(Mechanism::CudaConvnet),
            time(Mechanism::CudnnBest),
            opt_report.total_time() * 1e3,
        );
        details.push(opt_report);
    }

    // Per-layer detail for the first (or selected) network.
    let report = &details[0];
    println!("\nOpt layout assignment for {}:", report.network);
    print!("{report}");
    println!(
        "(transformations inserted: {}, costing {:.3} ms)",
        report.transform_count(),
        report.transform_time() * 1e3
    );
}
