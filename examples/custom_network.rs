//! Define a network in the prototxt-like config format (§IV.D's
//! "configuration file that defines a network structure"), then let the
//! engine assign layouts and place transformations.
//!
//! ```text
//! cargo run --release --example custom_network             # built-in demo
//! cargo run --release --example custom_network -- my.net   # from a file
//! ```

use memcnn::core::{parse_network, Engine, LayoutThresholds, Mechanism};
use memcnn::gpusim::DeviceConfig;

const DEMO: &str = "
# A deliberately layout-heterogeneous network: a small-C head that wants
# CHWN feeding large-C stages that want NCHW (at batch 64).
name: demo-net
input: 64 3 64 64
conv head co=96 f=5 stride=2
relu r1
pool p1 window=3 stride=2
conv mid co=256 f=3 pad=1
relu r2
pool p2 window=3 stride=2
conv tail co=384 f=3 pad=1
fc fc1 outputs=512
relu r3
fc fc2 outputs=100
softmax prob
";

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => DEMO.to_string(),
    };
    let net = match parse_network(&text) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("config error: {e}");
            std::process::exit(1);
        }
    };
    println!("parsed {} ({} layers, input {})\n", net.name, net.layers().len(), net.input);

    let engine = Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper());
    for mech in [Mechanism::CudaConvnet, Mechanism::CudnnBest, Mechanism::Opt] {
        let r = engine.simulate_network(&net, mech).expect("simulates");
        println!(
            "{:<13} {:8.3} ms  ({} transforms)",
            mech.label(),
            r.total_time() * 1e3,
            r.transform_count()
        );
    }
    let r = engine.simulate_network(&net, Mechanism::Opt).expect("simulates");
    println!("\n{r}");
}
