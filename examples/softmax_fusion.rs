//! The §V.B softmax story, end to end: correctness of the functional
//! kernel, then the three-step performance ladder (5-kernel baseline →
//! fused with serial inner loops → fused with parallel inner loops).
//!
//! ```text
//! cargo run --release --example softmax_fusion [batch] [categories]
//! ```

use memcnn::gpusim::{simulate, simulate_sequence, DeviceConfig, KernelSpec, SimOptions};
use memcnn::kernels::softmax::{
    five_kernel_pipeline, softmax_forward, SoftmaxFused, SoftmaxFusedSerial,
};
use memcnn::kernels::SoftmaxShape;

fn main() {
    let mut args = std::env::args().skip(1);
    let batch: usize = args.next().map(|a| a.parse().expect("batch")).unwrap_or(128);
    let categories: usize = args.next().map(|a| a.parse().expect("categories")).unwrap_or(1000);
    let shape = SoftmaxShape::new(batch, categories);
    println!("softmax {shape}");

    // Functional correctness: rows are probability distributions and the
    // max-shift keeps huge logits finite.
    let input: Vec<f32> = (0..shape.len()).map(|i| ((i * 37 % 101) as f32) * 20.0).collect();
    let probs = softmax_forward(&input, shape);
    for row in probs.chunks(categories) {
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4 && row.iter().all(|p| p.is_finite()));
    }
    println!("functional check: every row sums to 1 and stays finite ✓\n");

    let device = DeviceConfig::titan_black();
    let opts = SimOptions::default();
    let payload_gb = 2.0 * shape.len() as f64 * 4.0 / 1e9;

    let baseline = five_kernel_pipeline(shape);
    let refs: Vec<&dyn KernelSpec> = baseline.iter().map(|k| k.as_ref() as _).collect();
    let t_base = simulate_sequence(&device, &refs, &opts).expect("baseline").time();
    let t_serial =
        simulate(&device, &SoftmaxFusedSerial::new(shape), &opts).expect("fused-serial").time();
    let t_fused = simulate(&device, &SoftmaxFused::new(shape), &opts).expect("fused").time();

    let line = |name: &str, t: f64| {
        println!(
            "{name:<34} {:9.1} us   {:7.1} GB/s   {:5.2}x",
            t * 1e6,
            payload_gb / t,
            t_base / t
        );
    };
    println!("{:<34} {:>12} {:>14} {:>7}", "variant", "time", "bandwidth", "speedup");
    line("5 kernels, serial inner loops", t_base);
    line("fused kernel, serial inner loops", t_serial);
    line("fused + parallel inner loops (Opt)", t_fused);
    println!(
        "\nfusion alone: {:.2}x; injected inner-loop parallelism: {:.2}x more",
        t_base / t_serial,
        t_serial / t_fused
    );
}
