//! Functional forward pass: run LeNet on a synthetic MNIST batch three
//! times — all-NCHW, all-CHWN, and with the Opt engine's mixed layout
//! assignment — and verify the classifications are identical. This is the
//! §IV.D correctness property: layout transformations never change values.
//!
//! ```text
//! cargo run --release --example forward_pass
//! ```

use memcnn::core::exec::run_network;
use memcnn::core::{Engine, LayoutThresholds, Mechanism};
use memcnn::gpusim::DeviceConfig;
use memcnn::models::data::mnist_batch;
use memcnn::models::lenet;
use memcnn::tensor::Layout;

fn main() {
    let net = lenet().expect("LeNet builds");
    let batch = mnist_batch(net.input.n, 42);
    let n_layers = net.layers().len();

    // The Opt engine's layout assignment, read off the simulated report.
    let engine = Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper());
    let report = engine.simulate_network(&net, Mechanism::Opt).expect("simulates");
    let mixed: Vec<Layout> = report
        .layers
        .iter()
        .map(|l| if l.layout == "CHWN" { Layout::CHWN } else { Layout::NCHW })
        .collect();

    println!("running LeNet forward on a synthetic MNIST batch (N = {})", net.input.n);
    let all_nchw = run_network(&net, &batch.images, &vec![Layout::NCHW; n_layers], 9).unwrap();
    let all_chwn = run_network(&net, &batch.images, &vec![Layout::CHWN; n_layers], 9).unwrap();
    let opt = run_network(&net, &batch.images, &mixed, 9).unwrap();

    let max_diff = all_nchw
        .iter()
        .zip(all_chwn.iter().zip(&opt))
        .map(|(a, (b, c))| (a - b).abs().max((a - c).abs()))
        .fold(0f32, f32::max);
    println!("max probability difference across the three layout plans: {max_diff:.2e}");
    assert!(max_diff < 1e-3, "layouts must not change results");

    // Show the first few classifications.
    let categories = 10;
    println!("\nimage  argmax  p(argmax)");
    for n in 0..5.min(net.input.n) {
        let row = &opt[n * categories..(n + 1) * categories];
        let (arg, p) =
            row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, &p)| (i, p)).unwrap();
        println!("{n:>5}  {arg:>6}  {p:.4}");
    }
    println!("\nall three layout plans classify identically ✓");
}
