//! Train a small LeNet-style network end-to-end on synthetic MNIST with
//! plain SGD, using the library's functional forward and backward kernels —
//! demonstrating the paper's §II footnote that the same data structures and
//! operations serve both passes. The loss must drop.
//!
//! ```text
//! cargo run --release --example train_lenet [steps]
//! ```

use memcnn::kernels::conv::{conv_backward_filter, conv_backward_input, conv_forward};
use memcnn::kernels::layers::{fc_backward, fc_forward, relu_backward, relu_forward};
use memcnn::kernels::pool::{pool_backward_max, pool_forward, PoolOp};
use memcnn::kernels::softmax::{softmax_forward, softmax_xent_backward};
use memcnn::kernels::{ConvShape, PoolShape, SoftmaxShape};
use memcnn::models::data::mnist_batch;
use memcnn::tensor::{Layout, Shape, Tensor};

const BATCH: usize = 32;
const CLASSES: usize = 10;
const LR: f32 = 0.02;

fn main() {
    let steps: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(12);

    // Architecture: conv(8@5, pad 2) -> relu -> maxpool(2,2) -> fc(10) -> softmax.
    let conv = ConvShape { pad: 2, ..ConvShape::table1(BATCH, 8, 28, 5, 1, 1) };
    let pool = PoolShape::table1(BATCH, 28, 2, 8, 2);
    let fc_in = 8 * 14 * 14;
    let sm = SoftmaxShape::new(BATCH, CLASSES);

    // Parameters (seeded, small).
    let mut filter = Tensor::random(conv.filter_shape(), Layout::NCHW, 1);
    for v in filter.as_mut_slice() {
        *v *= 0.2;
    }
    let mut fc_w: Vec<f32> = Tensor::random(Shape::new(1, 1, CLASSES, fc_in), Layout::NCHW, 2)
        .into_vec()
        .iter()
        .map(|v| v * 0.05)
        .collect();

    // A learnable synthetic task: the label is derivable from the image
    // (mean brightness bucket), so a real signal exists.
    let base = mnist_batch(BATCH, 7);
    let labels: Vec<usize> = (0..BATCH)
        .map(|n| {
            let mut s = 0f32;
            for c in 0..1 {
                for h in 0..28 {
                    for w in 0..28 {
                        s += base.images.get(n, c, h, w);
                    }
                }
            }
            (((s + 784.0) / 1568.0 * CLASSES as f32) as usize).min(CLASSES - 1)
        })
        .collect();

    println!("training conv(8@5)->relu->pool->fc(10)->softmax on batch {BATCH}");
    println!("step   loss     accuracy");
    let mut first_loss = None;
    let mut last_loss = 0.0;
    for step in 0..steps {
        // ---- forward
        let z1 = conv_forward(&base.images, &filter, &conv, Layout::NCHW).unwrap();
        let a1 = relu_forward(&z1);
        let p1 = pool_forward(&a1, &pool, PoolOp::Max, Layout::NCHW);
        let logits = fc_forward(&p1, &fc_w, CLASSES);
        let probs = softmax_forward(&logits, sm);

        // ---- loss / metrics
        let mut loss = 0f32;
        let mut correct = 0usize;
        for (n, &lab) in labels.iter().enumerate() {
            let row = &probs[n * CLASSES..(n + 1) * CLASSES];
            loss -= row[lab].max(1e-9).ln();
            let argmax = row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
            if argmax == lab {
                correct += 1;
            }
        }
        loss /= BATCH as f32;
        println!("{step:>4}   {loss:<7.4}  {:>5.1}%", correct as f32 / BATCH as f32 * 100.0);
        first_loss.get_or_insert(loss);
        last_loss = loss;

        // ---- backward
        let dlogits: Vec<f32> =
            softmax_xent_backward(&logits, &labels, sm).iter().map(|g| g / BATCH as f32).collect();
        let (dfc_w, dp1_flat) = fc_backward(&p1, &fc_w, &dlogits, CLASSES);
        let dp1 = Tensor::from_vec(p1.shape(), Layout::NCHW, dp1_flat).unwrap();
        let da1 = pool_backward_max(&a1, &dp1, &pool, Layout::NCHW);
        let dz1 = relu_backward(&z1, &da1);
        let dfilter = conv_backward_filter(&base.images, &dz1, &conv).unwrap();
        // (grad wrt the input exists too; unused for the first layer)
        let _ = conv_backward_input(&dz1, &filter, &conv, Layout::NCHW);

        // ---- SGD
        for (w, g) in fc_w.iter_mut().zip(&dfc_w) {
            *w -= LR * g;
        }
        let fs = filter.as_mut_slice();
        for (w, (_, g)) in fs.iter_mut().zip(dfilter.iter_logical()) {
            // iter_logical order == NCHW buffer order for an NCHW tensor.
            *w -= LR * g;
        }
    }

    let first = first_loss.unwrap();
    println!("\nloss: {first:.4} -> {last_loss:.4}");
    assert!(last_loss < first * 0.9, "training must reduce the loss by >10%");
    println!("forward and backward kernels close the training loop ✓");
}
