//! Layout advisor: given a convolution configuration, report what every
//! implementation would cost on the simulated GPU, what the paper's
//! heuristic recommends, and whether a layout transformation would pay for
//! itself — the developer-facing use case of §IV.D.
//!
//! ```text
//! cargo run --release --example layout_advisor -- N Ci H Co F S [pad]
//! cargo run --release --example layout_advisor -- 64 256 55 256 5 2
//! cargo run --release --example layout_advisor            # CONV7 default
//! ```

use memcnn::core::{choose_layout, LayoutThresholds};
use memcnn::gpusim::{simulate, DeviceConfig, SimOptions};
use memcnn::kernels::conv::direct_chwn::DirectConvChwn;
use memcnn::kernels::conv::fft_nchw::{FftConvMode, FftConvNchw};
use memcnn::kernels::conv::mm_nchw::MmConvNchw;
use memcnn::kernels::transform::{TransformImpl, TransformKernel, VECTORIZE_MIN_N};
use memcnn::kernels::ConvShape;
use memcnn::tensor::Layout;

fn main() {
    let args: Vec<usize> =
        std::env::args().skip(1).map(|a| a.parse().expect("numeric argument")).collect();
    let shape = match args.as_slice() {
        [] => ConvShape::table1(64, 384, 13, 3, 256, 1),
        [n, ci, h, co, f, s] => ConvShape::table1(*n, *co, *h, *f, *ci, *s),
        [n, ci, h, co, f, s, pad] => {
            ConvShape { pad: *pad, ..ConvShape::table1(*n, *co, *h, *f, *ci, *s) }
        }
        _ => {
            eprintln!("usage: layout_advisor [N Ci H Co F S [pad]]");
            std::process::exit(2);
        }
    };
    shape.validate().expect("valid convolution shape");
    let device = DeviceConfig::titan_black();
    let opts = SimOptions::default();
    println!("advising on: {shape}");
    println!("device: {}\n", device.name);

    let direct = simulate(&device, &DirectConvChwn::new(shape), &opts).expect("direct").time();
    let mm = MmConvNchw::new(shape).simulate(&device, &opts).expect("mm").time();
    println!("CHWN  direct convolution   {:9.3} ms", direct * 1e3);
    println!("NCHW  im2col + GEMM        {:9.3} ms", mm * 1e3);
    let mut nchw_best = mm;
    for (label, mode) in [("FFT", FftConvMode::Full), ("FFT-tiling", FftConvMode::Tiled)] {
        match FftConvNchw::new(shape, mode) {
            Ok(p) => match p.simulate(&device, &opts) {
                Ok(r) => {
                    println!("NCHW  {:<20} {:9.3} ms", label, r.time() * 1e3);
                    nchw_best = nchw_best.min(r.time());
                }
                Err(e) => println!("NCHW  {label:<20} FAILS ({e})"),
            },
            Err(e) => println!("NCHW  {label:<20} unsupported ({e})"),
        }
    }

    let th = LayoutThresholds::titan_black_paper();
    let pick = choose_layout(&shape, &th);
    let (pref, alt) = if pick == Layout::CHWN { (direct, nchw_best) } else { (nchw_best, direct) };
    println!("\nheuristic pick: {pick}  (bare gain: {:.2}x)", alt / pref);

    // Would converting from the other layout pay off for this layer alone?
    let imp = if shape.n >= VECTORIZE_MIN_N { TransformImpl::Opt2 } else { TransformImpl::Opt1 };
    let (from, to) = if pick == Layout::CHWN {
        (Layout::NCHW, Layout::CHWN)
    } else {
        (Layout::CHWN, Layout::NCHW)
    };
    let t_in = simulate(&device, &TransformKernel::new(shape.input_shape(), from, to, imp), &opts)
        .expect("transform")
        .time();
    let t_out =
        simulate(&device, &TransformKernel::new(shape.output_shape(), to, from, imp), &opts)
            .expect("transform")
            .time();
    let with_transform = pref + t_in + t_out;
    println!(
        "with round-trip {:?} transforms: {:.3} ms -> {}",
        imp,
        with_transform * 1e3,
        if with_transform < alt {
            format!("still {:.2}x faster: transform pays off", alt / with_transform)
        } else {
            "transform overhead eats the gain: keep the neighbours' layout".to_string()
        }
    );
}
