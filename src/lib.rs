//! # memcnn — memory-efficient deep CNN primitives with a GPU memory simulator
//!
//! Facade crate for the workspace reproducing **"Optimizing Memory Efficiency
//! for Deep Convolutional Neural Networks on GPUs"** (Li, Yang, Feng,
//! Chakradhar, Zhou — SC'16). It re-exports the constituent crates:
//!
//! - [`tensor`]: 4D tensors with first-class data layouts (all 24 orders).
//! - [`gpusim`]: the warp-level GPU memory-hierarchy simulator the evaluation
//!   runs on (the substitution for the paper's Titan Black / Titan X GPUs).
//! - [`fft`]: from-scratch FFT substrate backing FFT-based convolution.
//! - [`kernels`]: every CNN kernel as a functional CPU implementation plus a
//!   GPU access-pattern spec (direct conv, im2col+GEMM conv, FFT conv,
//!   pooling, softmax, layout transforms, GEMM, FC, ReLU, LRN).
//! - [`core`]: the paper's contribution — layout-selection heuristic, fast
//!   layout transformation orchestration, auto-tuning, execution engine and
//!   library presets (cuda-convnet / Caffe / cuDNN modes / Opt).
//! - [`models`]: the Table-1 layer zoo and the five evaluated networks.
//! - [`trace`]: structured tracing — spans, kernel perf counters, layout
//!   decisions — with Chrome/Perfetto JSON and text-profile exporters.
//!   Off by default and zero-cost until [`trace::start`] is called.
//! - [`metrics`]: deterministic simulated-time gauges and mergeable
//!   log-bucketed latency histograms; timelines export as Perfetto
//!   counter tracks and `metrics.json` for the scenario harness.
//! - [`serve`]: deterministic discrete-event inference serving with dynamic
//!   batching and a per-bucket plan cache, so the layout plan follows the
//!   effective batch size as load changes.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! # Example
//!
//! Score LeNet under the paper's optimized framework vs cuDNN-MM:
//!
//! ```
//! use memcnn::core::{Engine, LayoutThresholds, Mechanism};
//! use memcnn::gpusim::DeviceConfig;
//! use memcnn::models::lenet;
//!
//! let engine = Engine::new(DeviceConfig::titan_black(),
//!                          LayoutThresholds::titan_black_paper());
//! let net = lenet().unwrap();
//! let opt = engine.simulate_network(&net, Mechanism::Opt).unwrap();
//! let mm = engine.simulate_network(&net, Mechanism::CudnnMm).unwrap();
//! assert!(opt.total_time() < mm.total_time()); // Fig 14's LeNet story
//! ```

#![warn(missing_docs)]

pub use memcnn_core as core;
pub use memcnn_fft as fft;
pub use memcnn_gpusim as gpusim;
pub use memcnn_kernels as kernels;
pub use memcnn_metrics as metrics;
pub use memcnn_models as models;
pub use memcnn_serve as serve;
pub use memcnn_tensor as tensor;
pub use memcnn_trace as trace;
